"""Tests for coverage estimation, page annotations and record extraction."""

from __future__ import annotations

import pytest

from repro.core.annotation import PageAnnotation, annotation_for_bindings, rerank_with_annotations
from repro.core.coverage import CoverageEstimator, coverage_curve
from repro.core.extraction import (
    extract_detail_record,
    extract_result_records,
    extraction_accuracy,
)
from repro.search.engine import SOURCE_SURFACED, SearchEngine
from repro.webspace.page import WebPage
from repro.webspace.url import Url


class TestCoverageEstimator:
    def _record_sets(self, car_site, car_prober, car_form, column_index: int = 0):
        select = car_form.select_inputs[column_index]
        sets = []
        for option in select.options:
            result = car_prober.probe(car_form, {select.name: option})
            sets.append(result.signature.record_ids)
        return sets

    def test_distinct_records_union(self):
        estimator = CoverageEstimator()
        sets = [frozenset({"a", "b"}), frozenset({"b", "c"})]
        assert estimator.distinct_records(sets) == {"a", "b", "c"}

    def test_high_coverage_via_make_enumeration(self, car_site, car_prober, car_form):
        estimator = CoverageEstimator()
        sets = self._record_sets(car_site, car_prober, car_form)
        report = estimator.report(car_site, sets)
        assert report.true_total == car_site.size()
        # Each result page lists at most one page of results, so enumeration
        # over one select covers most (not necessarily all) of the site.
        assert report.records_surfaced >= 0.85 * car_site.size()
        assert report.true_coverage >= 0.85
        assert report.lower_bound > 0.7
        assert "more than" in report.statement()

    def test_partial_coverage(self, car_site, car_prober, car_form):
        estimator = CoverageEstimator()
        sets = self._record_sets(car_site, car_prober, car_form)[:3]
        report = estimator.report(car_site, sets)
        assert 0 < report.records_surfaced < car_site.size()
        assert report.true_coverage < 1.0
        assert report.lower_bound <= report.true_coverage + 0.15

    def test_capture_recapture_brackets_truth(self, car_site, car_prober, car_form):
        # Two *overlapping* capture occasions: one enumerates makes, the other
        # colors.  Both see most of the site, so recaptures are plentiful and
        # the Chapman estimate lands near the true size.
        estimator = CoverageEstimator()
        by_make = self._record_sets(car_site, car_prober, car_form, column_index=0)
        by_color = self._record_sets(car_site, car_prober, car_form, column_index=1)
        estimate = estimator.capture_recapture(by_make, by_color)
        assert estimate.recaptured > 0
        assert estimate.estimate == pytest.approx(car_site.size(), rel=0.35)

    def test_empty_surfacing_report(self, car_site):
        report = CoverageEstimator().report(car_site, [])
        assert report.records_surfaced == 0
        assert report.estimated_total is None
        assert report.lower_bound == pytest.approx(0.0, abs=0.1)

    def test_coverage_curve_monotone(self, car_site, car_prober, car_form):
        sets = self._record_sets(car_site, car_prober, car_form)
        points = coverage_curve(car_site, sets, step=2)
        coverages = [point.true_coverage for point in points]
        assert coverages == sorted(coverages)
        assert points[-1].urls_fetched == len(sets)


class TestAnnotations:
    def test_annotation_from_bindings(self):
        annotation = annotation_for_bindings({"make": "Honda", "zip": "02139", "empty": " "}, domain="used_cars")
        assert annotation.as_dict["make"] == "Honda"
        assert annotation.as_dict["domain"] == "used_cars"
        assert "empty" not in annotation.as_dict
        assert {"honda", "02139", "used", "cars"} <= annotation.tokens()

    def test_empty_annotation(self):
        annotation = PageAnnotation()
        assert annotation.as_dict == {}
        assert annotation.tokens() == set()

    def test_rerank_penalizes_incidental_matches(self):
        engine = SearchEngine()
        # A surfaced Honda Civic page that *mentions* a Ford Focus in passing.
        honda_html = (
            "<html><head><title>Used car listings</title></head><body>"
            "<p>1993 Honda Civic for sale, better mileage than the Ford Focus</p></body></html>"
        )
        ford_html = (
            "<html><head><title>Used car listings</title></head><body>"
            "<p>1993 Ford Focus for sale clean title</p></body></html>"
        )
        engine.add_page(
            WebPage(url="http://cars.test/search?make=Honda", html=honda_html),
            source=SOURCE_SURFACED,
            annotations={"make": "Honda", "domain": "used_cars"},
        )
        engine.add_page(
            WebPage(url="http://cars.test/search?make=Ford", html=ford_html),
            source=SOURCE_SURFACED,
            annotations={"make": "Ford", "domain": "used_cars"},
        )
        query = "used ford focus 1993"
        baseline = engine.search(query, k=2)
        reranked = rerank_with_annotations(engine, query, baseline)
        assert reranked[0].url.endswith("make=Ford")
        ford_rank_change = [result.url for result in reranked].index(
            "http://cars.test/search?make=Ford"
        )
        assert ford_rank_change == 0

    def test_rerank_leaves_unannotated_pages_alone(self):
        engine = SearchEngine()
        engine.add_page(WebPage(url="http://plain.test/", html="<html><body><p>ford focus</p></body></html>"))
        results = engine.search("ford focus")
        reranked = rerank_with_annotations(engine, "ford focus", results)
        assert reranked[0].score == results[0].score


class TestExtraction:
    def test_extract_result_records_from_site_page(self, car_site, car_web, car_form):
        make_input = car_form.select_inputs[0]
        url = car_form.submission_url({make_input.name: make_input.options[0]})
        page = car_web.fetch(url)
        records = extract_result_records(page.html)
        assert records
        for record in records:
            assert record.title
            assert record.record_id
            assert record.fields.get("make", "").lower() == make_input.options[0].lower()

    def test_extract_detail_record(self, car_site, car_web):
        page = car_web.fetch(car_site.detail_url(5))
        record = extract_detail_record(page.html, page_url=page.url)
        truth = car_site.database.table("listings").get(5)
        assert record is not None
        assert record.record_id == "5"
        assert record.fields["make"] == truth["make"]
        assert int(record.fields["price"]) == truth["price"]

    def test_extract_detail_record_missing_table(self):
        assert extract_detail_record("<html><body><p>nothing here</p></body></html>") is None

    def test_merged_with_bindings(self):
        records = extract_result_records(
            '<html><body><div class="result"><h3><a href="http://s/item?id=1">X</a></h3>'
            "<p>price: 10</p></div></body></html>"
        )
        merged = records[0].merged_with_bindings({"make": "Honda"})
        assert merged.fields["form_make"] == "Honda"
        assert merged.fields["price"] == "10"

    def test_extraction_accuracy_against_ground_truth(self, car_site, car_web, car_form):
        make_input = car_form.select_inputs[0]
        url = car_form.submission_url({make_input.name: make_input.options[0]})
        page = car_web.fetch(url)
        records = extract_result_records(page.html)
        truth = list(car_site.database.table("listings"))
        assert extraction_accuracy(records, truth, key_field="title") > 0.9

    def test_wrapper_induction_without_result_class(self):
        html = (
            "<html><body>"
            '<div class="row"><h3><a href="/item?id=1">First</a></h3><p>price: 5</p></div>'
            '<div class="row"><h3><a href="/item?id=2">Second</a></h3><p>price: 7</p></div>'
            "</body></html>"
        ).replace('class="row"', 'class="listing"')
        records = extract_result_records(html)
        assert len(records) == 2
        assert {record.title for record in records} == {"First", "Second"}
