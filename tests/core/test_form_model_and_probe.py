"""Tests for form discovery, submission URLs and the form prober."""

from __future__ import annotations

from repro.core.form_model import discover_forms
from repro.core.probe import FormProber
from repro.webspace.loadmeter import AGENT_SURFACER


class TestDiscoverForms:
    def test_discovers_one_form(self, car_site, car_web):
        page = car_web.fetch(car_site.homepage_url())
        forms = discover_forms(page)
        assert len(forms) == 1
        assert forms[0].host == car_site.host
        assert forms[0].is_get

    def test_input_partitioning(self, car_form):
        text_names = {spec.name for spec in car_form.text_inputs}
        select_names = {spec.name for spec in car_form.select_inputs}
        assert text_names and select_names
        assert not text_names & select_names

    def test_identity_is_host_plus_action(self, car_form, car_site):
        assert car_form.identity == f"{car_site.host}{car_form.action_path}"

    def test_input_named(self, car_form):
        first = car_form.bindable_inputs[0]
        assert car_form.input_named(first.name) is first
        assert car_form.input_named("missing") is None


class TestSubmissionUrl:
    def test_bindings_become_params(self, car_form, car_site):
        select = car_form.select_inputs[0]
        url = car_form.submission_url({select.name: select.options[0]})
        assert url.host == car_site.host
        assert url.path == car_form.action_path
        assert url.param(select.name) == select.options[0]

    def test_empty_bindings_dropped(self, car_form):
        url = car_form.submission_url({"make": "  ", "q": ""})
        assert url.param("make") is None
        assert url.param("q") is None

    def test_identical_bindings_give_identical_urls(self, car_form):
        select = car_form.select_inputs[0]
        bindings = {select.name: select.options[0]}
        assert str(car_form.submission_url(bindings)) == str(car_form.submission_url(dict(bindings)))


class TestFormProber:
    def test_probe_returns_signature(self, car_form, car_prober):
        select = car_form.select_inputs[0]
        result = car_prober.probe(car_form, {select.name: select.options[0]})
        assert result.ok
        assert result.result_count > 0
        assert result.signature.record_ids

    def test_probe_cache_avoids_repeat_fetches(self, car_form, car_web, car_site):
        prober = FormProber(car_web)
        select = car_form.select_inputs[0]
        bindings = {select.name: select.options[0]}
        prober.probe(car_form, bindings)
        load_after_first = car_web.load_meter.total(host=car_site.host, agent=AGENT_SURFACER)
        prober.probe(car_form, bindings)
        assert car_web.load_meter.total(host=car_site.host, agent=AGENT_SURFACER) == load_after_first
        assert prober.probe_count == 1

    def test_nonsense_probe_has_no_results(self, car_form, car_prober):
        search_box = next(
            spec for spec in car_form.text_inputs if spec.name in ("q", "query", "keywords", "search", "kw")
        )
        result = car_prober.probe(car_form, {search_box.name: "zzqx"})
        assert result.ok
        assert not result.has_results

    def test_probe_uses_surfacer_agent(self, car_form, car_web, car_site):
        prober = FormProber(car_web)
        prober.probe(car_form, {})
        assert car_web.load_meter.total(host=car_site.host, agent=AGENT_SURFACER) >= 1
