"""Tests for page signatures and the informativeness measure."""

from __future__ import annotations

from repro.core.informativeness import (
    PageSignature,
    distinct_signature_fraction,
    is_informative,
    record_ids_from_links,
    signature_for_page,
    signature_of,
)
from repro.webspace.page import not_found


RESULTS_HTML = """
<html><head><title>Results</title></head><body>
<p class="result-count">3 results found</p>
<div class="result"><h3><a href="http://cars.test/item?id=4">Car A</a></h3><p>make: Toyota</p></div>
<div class="result"><h3><a href="http://cars.test/item?id=9">Car B</a></h3><p>make: Honda</p></div>
<div class="result"><h3><a href="http://cars.test/item?id=11">Car C</a></h3><p>make: Ford</p></div>
</body></html>
"""

EMPTY_HTML = """
<html><head><title>Results</title></head><body>
<p class="result-count">No results found</p>
</body></html>
"""


class TestSignatureOf:
    def test_result_count_parsed_from_banner(self):
        signature = signature_of(RESULTS_HTML)
        assert signature.result_count == 3
        assert not signature.is_error
        assert not signature.is_empty

    def test_record_ids_from_detail_links(self):
        signature = signature_of(RESULTS_HTML)
        assert signature.record_ids == frozenset(
            {"cars.test#4", "cars.test#9", "cars.test#11"}
        )

    def test_empty_page(self):
        signature = signature_of(EMPTY_HTML)
        assert signature.result_count == 0
        assert signature.is_empty

    def test_error_page_detected(self):
        signature = signature_of(not_found("http://x.com/").html)
        assert signature.is_error

    def test_count_falls_back_to_record_links(self):
        html = RESULTS_HTML.replace('<p class="result-count">3 results found</p>', "")
        assert signature_of(html).result_count == 3

    def test_signature_for_page_resolves_relative_links(self):
        html = RESULTS_HTML.replace("http://cars.test/item", "/item")
        signature = signature_for_page(html, "http://cars.test/search?make=Toyota")
        assert signature.record_ids == frozenset({"cars.test#4", "cars.test#9", "cars.test#11"})

    def test_distinct_from(self):
        first = signature_of(RESULTS_HTML)
        second = signature_of(RESULTS_HTML.replace("id=11", "id=12"))
        empty = signature_of(EMPTY_HTML)
        assert first.distinct_from(second)
        assert not first.distinct_from(first)
        assert not empty.distinct_from(signature_of(not_found("u").html))


class TestInformativeness:
    def _signature(self, ids: set[str], error: bool = False) -> PageSignature:
        return PageSignature(
            content_hash=str(sorted(ids)),
            result_count=len(ids),
            record_ids=frozenset(ids),
            is_error=error,
        )

    def test_all_distinct_is_fully_informative(self):
        signatures = [self._signature({f"r{i}"}) for i in range(5)]
        assert distinct_signature_fraction(signatures) == 1.0
        assert is_informative(signatures)

    def test_all_identical_is_barely_informative(self):
        signatures = [self._signature({"r1"}) for _ in range(10)]
        assert distinct_signature_fraction(signatures) == 0.1
        assert not is_informative(signatures, threshold=0.25)

    def test_errors_and_empties_do_not_count(self):
        signatures = [self._signature(set()) for _ in range(4)] + [
            self._signature({"x"}, error=True)
        ]
        assert distinct_signature_fraction(signatures) == 0.0

    def test_empty_input(self):
        assert distinct_signature_fraction([]) == 0.0
        assert not is_informative([])

    def test_threshold_behaviour(self):
        signatures = [self._signature({"a"}), self._signature({"a"}), self._signature({"b"}), self._signature({"c"})]
        fraction = distinct_signature_fraction(signatures)
        assert fraction == 0.75
        assert is_informative(signatures, threshold=0.7)
        assert not is_informative(signatures, threshold=0.8)


class TestRecordIdsFromLinks:
    def test_only_item_links_counted(self):
        links = [
            "http://a.com/item?id=1",
            "http://a.com/item?id=2",
            "http://a.com/other?id=3",
            "http://a.com/",
        ]
        assert record_ids_from_links(links) == frozenset({"a.com#1", "a.com#2"})

    def test_item_link_without_id_ignored(self):
        assert record_ids_from_links(["http://a.com/item"]) == frozenset()


class TestFastScanDifferential:
    """The linear fast scanner must agree byte-for-byte with the DOM path
    on generated pages, and must *refuse* (return ``None``) anything it
    cannot prove it parses identically."""

    def _site_pages(self, car_site):
        from repro.webspace.url import Url

        template = car_site.forms[0]
        make_input = next(
            spec for spec in template.inputs if spec.column == "make"
        )
        urls = [
            car_site.homepage_url(),
            car_site.detail_url(1),
            Url.build(car_site.host, template.action_path, {}),
            Url.build(
                car_site.host,
                template.action_path,
                {make_input.name: make_input.options[0]},
            ),
            Url.build(
                car_site.host, template.action_path, {make_input.name: "zzqx"}
            ),
        ]
        return [car_site.handle(url) for url in urls]

    def test_fast_scan_matches_dom_scan_on_generated_pages(self, car_site):
        from repro.core.informativeness import _dom_scan, _fast_scan

        for page in self._site_pages(car_site):
            assert page.ok
            fast = _fast_scan(page.html)
            assert fast is not None, "generated markup should take the fast path"
            assert fast == _dom_scan(page.html)

    def test_analyze_html_identical_with_fast_path_disabled(self, car_site):
        import repro.core.informativeness as informativeness
        from repro.core.informativeness import analyze_html

        pages = self._site_pages(car_site)
        enabled = [analyze_html(page.html) for page in pages]
        informativeness.FAST_SCAN_ENABLED = False
        try:
            disabled = [analyze_html(page.html) for page in pages]
        finally:
            informativeness.FAST_SCAN_ENABLED = True
        assert enabled == disabled

    def test_fast_scan_refuses_cdata_and_malformed_markup(self):
        from repro.core.informativeness import _dom_scan, _fast_scan, analyze_html

        refused = [
            "<html><body><script>var x = '<div>';</script>hi</body></html>",
            "<html><body><style>p { color: red }</style>hi</body></html>",
            "<html><body><p>unterminated <a href='x</p></body></html>",
            "<html><body><p>stray < bracket</p></body></html>",
        ]
        for html in refused:
            assert _fast_scan(html) is None, html
            # The DOM fallback still analyzes the page.
            title, pieces, hrefs = _dom_scan(html)
            assert analyze_html(html).text == " ".join(
                ([title] if title else []) + pieces
            )
