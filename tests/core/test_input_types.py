"""Tests for typed-input recognition (paper Section 4.1, experiment E2)."""

from __future__ import annotations

import pytest

from repro.core.input_types import (
    COMMON_TYPES,
    InputTypeClassifier,
    TYPE_CITY,
    TYPE_DATE,
    TYPE_PRICE,
    TYPE_SEARCH,
    TYPE_STATE,
    TYPE_ZIPCODE,
    TypePrediction,
    TypedValueLibrary,
    value_matches_type,
)
from repro.htmlparse.forms import ParsedInput


def text_input(name: str, label: str = "") -> ParsedInput:
    return ParsedInput(name=name, kind="text", label=label)


class TestValueMatchesType:
    @pytest.mark.parametrize(
        "value,type_name,expected",
        [
            ("02139", TYPE_ZIPCODE, True),
            ("2139", TYPE_ZIPCODE, False),
            ("abcde", TYPE_ZIPCODE, False),
            ("2008-05-01", TYPE_DATE, True),
            ("2008", TYPE_DATE, True),
            ("May 2008", TYPE_DATE, False),
            ("$1500", TYPE_PRICE, True),
            ("1500.50", TYPE_PRICE, True),
            ("cheap", TYPE_PRICE, False),
            ("Boston", TYPE_CITY, True),
            ("TX", TYPE_STATE, True),
            ("Texas", TYPE_STATE, True),
            ("ZZ9", TYPE_STATE, False),
        ],
    )
    def test_cases(self, value, type_name, expected):
        assert value_matches_type(value, type_name) is expected


class TestTypedValueLibrary:
    def test_values_exist_for_all_common_types(self):
        library = TypedValueLibrary()
        for type_name in COMMON_TYPES:
            values = library.values_for(type_name)
            assert values, type_name
            assert all(value_matches_type(value, type_name) or type_name == TYPE_DATE for value in values[:5])

    def test_sampling_is_deterministic(self):
        assert TypedValueLibrary().values_for(TYPE_ZIPCODE, 5) == TypedValueLibrary().values_for(TYPE_ZIPCODE, 5)

    def test_nonsense_values(self):
        assert len(TypedValueLibrary().nonsense_values(3)) == 3

    def test_extend_adds_new_values(self):
        library = TypedValueLibrary()
        library.extend(TYPE_CITY, ["Springfield", "Boston"])
        values = library.values_for(TYPE_CITY)
        assert "Springfield" in values
        assert values.count("Boston") == 1

    def test_unknown_type_returns_empty(self):
        assert TypedValueLibrary().values_for("unknown_type") == []


class TestNameClassification:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("zip", TYPE_ZIPCODE),
            ("zip_code", TYPE_ZIPCODE),
            ("postal_code", TYPE_ZIPCODE),
            ("city", TYPE_CITY),
            ("location", TYPE_CITY),
            ("start_date", TYPE_DATE),
            ("max_price", TYPE_PRICE),
            ("salary", TYPE_PRICE),
            ("state", TYPE_STATE),
        ],
    )
    def test_typed_names(self, name, expected):
        prediction = InputTypeClassifier().classify_by_name(text_input(name))
        assert prediction is not None
        assert prediction.predicted_type == expected

    @pytest.mark.parametrize("name", ["q", "query", "keywords", "search"])
    def test_search_box_names(self, name):
        prediction = InputTypeClassifier().classify_by_name(text_input(name))
        assert prediction.predicted_type == TYPE_SEARCH

    def test_unknown_name_returns_none(self):
        assert InputTypeClassifier().classify_by_name(text_input("frobnicator")) is None

    def test_label_used_when_name_is_opaque(self):
        prediction = InputTypeClassifier().classify_by_name(text_input("field_7", label="Zip code"))
        assert prediction.predicted_type == TYPE_ZIPCODE


class TestProbeConfirmation:
    def test_zipcode_input_confirmed_on_car_site(self, car_form, car_prober):
        classifier = InputTypeClassifier()
        zipcode_input = next(
            spec
            for spec in car_form.text_inputs
            if classifier.classify_by_name(spec) is not None
            and classifier.classify_by_name(spec).predicted_type == TYPE_ZIPCODE
        )
        prediction = classifier.confirm_with_probes(car_form, zipcode_input, TYPE_ZIPCODE, car_prober)
        assert prediction.probe_confirmed
        assert prediction.predicted_type == TYPE_ZIPCODE
        assert prediction.confidence > 0.9

    def test_whole_form_classification(self, car_form, car_prober):
        classifier = InputTypeClassifier()
        predictions = classifier.classify_form(car_form, car_prober)
        assert set(predictions.keys()) == {spec.name for spec in car_form.text_inputs}
        typed = classifier.typed_inputs(predictions)
        assert any(type_name == TYPE_ZIPCODE for type_name in typed.values())
        assert any(
            prediction.predicted_type == TYPE_SEARCH for prediction in predictions.values()
        ), "the generic search box should remain a search box"

    def test_classification_without_prober_uses_names_only(self, car_form):
        predictions = InputTypeClassifier().classify_form(car_form, prober=None)
        assert all(isinstance(prediction, TypePrediction) for prediction in predictions.values())
        assert not any(prediction.probe_confirmed for prediction in predictions.values())

    def test_store_locator_zip_and_city_recognized(self, store_site):
        from repro.core.form_model import discover_forms
        from repro.core.probe import FormProber
        from repro.webspace.web import Web

        web = Web()
        web.register(store_site)
        page = web.fetch(store_site.homepage_url())
        form = discover_forms(page)[0]
        classifier = InputTypeClassifier()
        predictions = classifier.classify_form(form, FormProber(web))
        typed = set(classifier.typed_inputs(predictions).values())
        assert TYPE_ZIPCODE in typed
        assert TYPE_CITY in typed
