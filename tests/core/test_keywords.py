"""Tests for iterative-probing keyword selection."""

from __future__ import annotations

from repro.core.keywords import IterativeProber
from repro.core.probe import FormProber
from repro.search.crawler import Crawler
from repro.search.engine import SearchEngine


def search_box_name(form) -> str:
    hints = {"q", "query", "keywords", "search", "kw"}
    return next(spec.name for spec in form.text_inputs if spec.name in hints)


class TestSeedKeywords:
    def test_seeds_from_homepage_when_index_empty(self, car_form, car_prober, car_web, car_site):
        homepage = car_web.fetch(car_site.homepage_url())
        prober = IterativeProber(car_prober, engine=None, seed_count=6)
        seeds = prober.seed_keywords(car_form, homepage.html)
        # Page-text seeds are capped at seed_count; select-option tokens may
        # double that at most.
        assert 0 < len(seeds) <= 12
        assert all(len(seed) > 2 for seed in seeds)

    def test_seeds_prefer_indexed_site_pages(self, car_form, car_prober, car_web, car_site):
        engine = SearchEngine()
        crawler = Crawler(car_web, engine)
        crawler.fetch_and_index(car_site.detail_url(1))
        crawler.fetch_and_index(car_site.detail_url(2))
        prober = IterativeProber(car_prober, engine=engine, seed_count=8)
        seeds = prober.seed_keywords(car_form)
        record = car_site.database.table("listings").get(1)
        record_tokens = set(str(record["description"]).lower().split()) | {record["make"].lower()}
        assert set(seeds) & record_tokens, "seeds should reflect indexed site content"

    def test_select_options_seed_even_without_page_text(self, car_form, car_prober):
        # With no indexed pages and no form-page text, the select-menu option
        # values still bootstrap probing (makes, colors, body styles).
        prober = IterativeProber(car_prober, engine=None)
        seeds = prober.seed_keywords(car_form, form_page_html="")
        assert seeds
        option_tokens = {
            token.lower()
            for spec in car_form.select_inputs
            for option in spec.options
            for token in option.split()
        }
        assert set(seeds) <= option_tokens


class TestSelectKeywords:
    def test_selected_keywords_retrieve_results(self, car_form, car_prober, car_web, car_site):
        homepage = car_web.fetch(car_site.homepage_url())
        prober = IterativeProber(car_prober, max_keywords=8, max_rounds=2)
        selection = prober.select_keywords(car_form, search_box_name(car_form), homepage.html)
        assert selection.keywords, "iterative probing should find at least one keyword"
        assert selection.records_covered > 0
        assert selection.probes_issued >= len(selection.keywords)
        for keyword in selection.keywords:
            result = car_prober.probe(car_form, {search_box_name(car_form): keyword})
            assert result.has_results

    def test_selection_is_diverse(self, car_form, car_prober, car_web, car_site):
        homepage = car_web.fetch(car_site.homepage_url())
        prober = IterativeProber(car_prober, max_keywords=10, max_rounds=2)
        selection = prober.select_keywords(car_form, search_box_name(car_form), homepage.html)
        # Each keyword must have contributed at least one new record, so the
        # total coverage is at least the number of keywords.
        assert selection.records_covered >= len(selection.keywords)

    def test_max_keywords_respected(self, car_form, car_prober, car_web, car_site):
        homepage = car_web.fetch(car_site.homepage_url())
        prober = IterativeProber(car_prober, max_keywords=3, max_rounds=2)
        selection = prober.select_keywords(car_form, search_box_name(car_form), homepage.html)
        assert len(selection.keywords) <= 3

    def test_rounds_bounded(self, car_form, car_prober, car_web, car_site):
        homepage = car_web.fetch(car_site.homepage_url())
        prober = IterativeProber(car_prober, max_rounds=1)
        selection = prober.select_keywords(car_form, search_box_name(car_form), homepage.html)
        assert selection.rounds <= 1

    def test_candidate_extraction_skips_stopwords_and_numbers(self, car_form, car_prober):
        select = car_form.select_inputs[0]
        result = car_prober.probe(car_form, {select.name: select.options[0]})
        candidates = IterativeProber.extract_candidates(result, limit=20)
        assert candidates
        assert all(not candidate.isdigit() and len(candidate) > 2 for candidate in candidates)
