"""Equivalence and behaviour tests for the single-pass analysis cache."""

from __future__ import annotations

import pytest

from repro.core.informativeness import (
    SignatureCache,
    analyze_html,
    default_signature_cache,
    set_default_signature_cache,
    signature_for_page,
    signature_of,
)
from repro.htmlparse.dom import parse_html
from repro.htmlparse.links import extract_links, resolve_links
from repro.htmlparse.text import extract_text, extract_title
from repro.webspace.sitegen import WebConfig, generate_web

pytestmark = pytest.mark.smoke


def corpus_pages():
    """A mixed bag of real generated pages: homepages, results, details."""
    web = generate_web(WebConfig(total_deep_sites=4, surface_site_count=1, max_records=60, seed=3))
    pages = []
    for site in web.sites():
        homepage = web.fetch(site.homepage_url())
        pages.append(homepage)
        for link in extract_links(homepage.html, homepage.url)[:6]:
            pages.append(web.fetch(link))
    return pages


class TestSinglePassAnalysis:
    def test_matches_legacy_extractors_on_generated_pages(self):
        for page in corpus_pages():
            dom = parse_html(page.html)
            analysis = analyze_html(page.html)
            assert analysis.title == extract_title(dom)
            assert analysis.text == extract_text(dom)
            assert resolve_links(analysis.hrefs, page.url) == extract_links(dom, page.url)
            assert resolve_links(analysis.hrefs, None) == extract_links(dom, None)

    def test_text_quirks_preserved(self):
        # Parent text chunks precede children's; skip tags hide text but not
        # anchors; the title is collected from anywhere in the document.
        html = (
            "<html><head><title>T</title></head><body>"
            "<div>before<span>inner</span>after</div>"
            '<noscript>hidden <a href="http://h.test/item?id=1">x</a></noscript>'
            "<script>var junk = 1;</script>"
            "</body></html>"
        )
        analysis = analyze_html(html)
        dom = parse_html(html)
        assert analysis.text == extract_text(dom)
        assert analysis.text == "T before after inner"
        assert "http://h.test/item?id=1" in analysis.hrefs


class TestCachedVsUncachedSignatures:
    def test_identical_signatures_for_every_page_and_base(self):
        cache = SignatureCache()
        uncached = SignatureCache(max_entries=0)
        for page in corpus_pages():
            for base in (None, page.url):
                first = cache.signature(page.html, page_url=base)
                second = cache.signature(page.html, page_url=base)  # cache hit
                fresh = uncached.signature(page.html, page_url=base)
                assert first == second == fresh
        assert cache.hits > 0
        assert len(uncached) == 0

    def test_signature_of_and_for_page_agree_with_explicit_cache(self):
        html = (
            "<html><body><p>2 results found</p>"
            '<a href="/item?id=7">A</a><a href="/item?id=9">B</a></body></html>'
        )
        absolute = html.replace('href="/item', 'href="http://cars.test/item')
        assert signature_of(absolute) == signature_for_page(
            absolute, "http://cars.test/search"
        )
        relative = signature_for_page(html, "http://cars.test/search")
        assert relative.record_ids == {"cars.test#7", "cars.test#9"}
        # Without a base the relative links cannot resolve.
        assert signature_of(html).record_ids == frozenset()

    def test_distinct_bases_are_cached_separately(self):
        cache = SignatureCache()
        html = '<html><body><a href="/item?id=1">x</a></body></html>'
        first = cache.signature(html, page_url="http://a.test/search")
        second = cache.signature(html, page_url="http://b.test/search")
        assert first.record_ids == {"a.test#1"}
        assert second.record_ids == {"b.test#1"}


class TestCacheMechanics:
    def test_eviction_bounds_entries(self):
        cache = SignatureCache(max_entries=4)
        for index in range(10):
            cache.analyze(f"<html><body>page {index}</body></html>")
        assert len(cache) <= 4

    def test_eviction_preserves_other_signatures(self):
        # Evicting one page's analysis must not wipe the signatures derived
        # from other (still-cached) pages.
        cache = SignatureCache(max_entries=3)
        pages = [
            f'<html><body><a href="/item?id={index}">r</a></body></html>'
            for index in range(3)
        ]
        for page in pages:
            cache.signature(page, page_url="http://h.test/search")
        cache.analyze("<html><body>a fourth page</body></html>")  # evicts one
        hits_before = cache.hits
        survivor = cache.signature(pages[-1], page_url="http://h.test/search")
        assert survivor.record_ids == {"h.test#2"}
        assert cache.hits == hits_before + 1  # served from cache, not re-derived

    def test_stats_and_clear(self):
        cache = SignatureCache()
        cache.analyze("<html><body>x</body></html>")
        cache.analyze("<html><body>x</body></html>")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert cache.stats()["entries"] == 0

    def test_default_cache_swap_restores(self):
        original = default_signature_cache()
        replacement = SignatureCache(max_entries=0)
        previous = set_default_signature_cache(replacement)
        try:
            assert previous is original
            assert default_signature_cache() is replacement
        finally:
            set_default_signature_cache(original)
        assert default_signature_cache() is original

    def test_error_pages_short_circuit(self):
        assert signature_of("anything", status_ok=False).is_error

    def test_injected_empty_cache_is_not_mistaken_for_missing(self):
        # An empty cache is falsy (len == 0); the seam must still honor it
        # instead of silently falling back to the process default.
        from repro.core.probe import FormProber
        from repro.search.crawler import Crawler
        from repro.search.engine import SearchEngine
        from repro.webspace.web import Web

        injected = SignatureCache()
        engine = SearchEngine(signature_cache=injected)
        assert engine.signature_cache is injected
        assert FormProber(Web(), signature_cache=injected).signature_cache is injected
        assert Crawler(Web(), engine, signature_cache=injected).signature_cache is injected
