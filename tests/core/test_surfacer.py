"""Tests for the end-to-end surfacing pipeline."""

from __future__ import annotations

import pytest

from repro.core.surfacer import Surfacer, SurfacingConfig
from repro.datagen.domains import domain
from repro.search.engine import SOURCE_SURFACED, SearchEngine
from repro.util.rng import SeededRng
from repro.webspace.loadmeter import AGENT_SURFACER
from repro.webspace.sitegen import build_deep_site
from repro.webspace.web import Web


@pytest.fixture
def car_world(car_site):
    web = Web()
    web.register(car_site)
    engine = SearchEngine()
    return web, engine, car_site


class TestSurfaceSite:
    def test_surfacing_covers_most_of_the_site(self, car_world):
        web, engine, site = car_world
        surfacer = Surfacer(web, engine, SurfacingConfig(max_urls_per_form=300))
        result = surfacer.surface_site(site)
        assert result.forms_found == 1
        assert result.forms_surfaced == 1
        assert result.urls_indexed > 0
        assert result.records_covered / site.size() > 0.8
        assert result.coverage is not None
        assert result.coverage.true_coverage > 0.8

    def test_surfaced_pages_land_in_the_index(self, car_world):
        web, engine, site = car_world
        Surfacer(web, engine).surface_site(site)
        surfaced_docs = engine.documents(source=SOURCE_SURFACED)
        assert surfaced_docs
        assert all(doc.host == site.host for doc in surfaced_docs)
        assert all(doc.annotations for doc in surfaced_docs), "annotations stored per page"

    def test_surfaced_content_is_searchable(self, car_world):
        web, engine, site = car_world
        Surfacer(web, engine).surface_site(site)
        record = site.database.table("listings").get(1)
        query = f"{record['year']} {record['make']} {record['model']}"
        results = engine.search(query, k=5)
        assert results
        assert any(result.source == SOURCE_SURFACED and result.host == site.host for result in results)

    def test_post_form_site_is_skipped(self):
        site = build_deep_site(domain("jobs"), "postjobs.test", 30, SeededRng(4), method="post")
        web = Web()
        web.register(site)
        result = Surfacer(web, SearchEngine()).surface_site(site)
        assert result.post_forms_skipped == 1
        assert result.forms_surfaced == 0
        assert result.urls_indexed == 0

    def test_typed_inputs_detected_during_surfacing(self, car_world):
        web, engine, site = car_world
        result = Surfacer(web, engine).surface_site(site)
        form_result = result.form_results[0]
        assert "zipcode" in set(form_result.typed_inputs.values())
        assert {pair.property_name for pair in form_result.range_pairs} >= {"price"}

    def test_database_selection_detected_on_media_site(self, media_site):
        web = Web()
        web.register(media_site)
        result = Surfacer(web, SearchEngine()).surface_site(media_site)
        form_result = result.form_results[0]
        assert form_result.database_selection is not None
        assert result.records_covered > 0

    def test_analysis_load_is_bounded(self, car_world):
        web, engine, site = car_world
        config = SurfacingConfig(max_urls_per_form=150)
        result = Surfacer(web, engine, config).surface_site(site)
        # Off-line analysis load stays within a small constant factor of the
        # site's database size (the paper's "light load" claim).
        assert result.analysis_load <= 12 * site.size()
        assert result.analysis_load == web.load_meter.total(host=site.host, agent=AGENT_SURFACER)

    def test_indexability_criterion_bounds_results_per_page(self, car_world):
        web, engine, site = car_world
        config = SurfacingConfig(min_results_per_page=1, max_results_per_page=20)
        result = Surfacer(web, engine, config).surface_site(site)
        for form_result in result.form_results:
            stats = form_result.generation_stats
            assert stats.rejected_too_many >= 0
            assert stats.kept == form_result.urls_kept
        # No kept page may exceed the bound.
        for form_result in result.form_results:
            for record_set in form_result.record_sets:
                assert len(record_set) <= 20


class TestSurfaceWeb:
    def test_surfaces_every_get_site(self, surfaced_world):
        results = surfaced_world.surfacing_results
        assert results
        get_sites = [
            result for result in results if result.post_forms_skipped == 0 and result.forms_found > 0
        ]
        assert all(result.urls_indexed > 0 for result in get_sites)

    def test_urls_generated_scale_with_database_size(self, surfaced_world):
        """URLs should track database size, not the Cartesian query space."""
        results = [result for result in surfaced_world.surfacing_results if result.urls_indexed > 0]
        for result in results:
            site = surfaced_world.web.site(result.host)
            assert result.urls_generated <= 6 * site.size() + 60

    def test_deterministic_given_seed(self, car_site):
        def run() -> int:
            web = Web()
            web.register(
                build_deep_site(domain("books"), "det.test", 40, SeededRng("determinism"))
            )
            surfacer = Surfacer(web, SearchEngine(), SurfacingConfig(seed=3))
            return surfacer.surface_web()[0].urls_indexed

        assert run() == run()
