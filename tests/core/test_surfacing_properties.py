"""Property-based tests on surfacing invariants.

These hold for any generated site, not just the fixtures: submission URLs are
canonical and deterministic, range-aware enumeration never produces inverted
ranges, and the indexability filter never keeps an empty page.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.correlations import CorrelationDetector
from repro.core.form_model import discover_forms
from repro.core.probe import FormProber
from repro.core.templates import QueryTemplate
from repro.core.urlgen import IndexabilityCriterion, UrlGenerator
from repro.datagen.domains import domain, domain_names
from repro.util.rng import SeededRng
from repro.webspace.sitegen import build_deep_site
from repro.webspace.web import Web

_SITE_CACHE: dict[tuple[str, int], tuple] = {}


def _site_and_form(domain_name: str, seed: int):
    """Build (and cache) a small site plus its discovered form."""
    key = (domain_name, seed)
    if key not in _SITE_CACHE:
        site = build_deep_site(
            domain(domain_name), f"{domain_name}{seed}.prop.test", 40, SeededRng(f"prop-{key}")
        )
        web = Web()
        web.register(site)
        form = discover_forms(web.fetch(site.homepage_url()))[0]
        _SITE_CACHE[key] = (web, site, form)
    return _SITE_CACHE[key]


domain_strategy = st.sampled_from(sorted(domain_names()))
seed_strategy = st.integers(min_value=0, max_value=3)


class TestSubmissionUrlProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(domain_name=domain_strategy, seed=seed_strategy, data=st.data())
    def test_submission_urls_are_canonical_and_on_host(self, domain_name, seed, data):
        _web, site, form = _site_and_form(domain_name, seed)
        bindable = [spec for spec in form.bindable_inputs]
        chosen = data.draw(st.lists(st.sampled_from(bindable), max_size=3, unique_by=lambda s: s.name))
        bindings = {}
        for spec in chosen:
            if spec.options:
                bindings[spec.name] = data.draw(st.sampled_from(list(spec.options)))
            else:
                bindings[spec.name] = data.draw(st.text(alphabet="abc123 ", max_size=8))
        url = form.submission_url(bindings)
        again = form.submission_url(dict(reversed(list(bindings.items()))))
        assert url.host == site.host
        assert url.path == form.action_path
        assert str(url) == str(again), "binding order must not change the URL"

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(domain_name=domain_strategy, seed=seed_strategy)
    def test_every_submission_is_handled_by_the_site(self, domain_name, seed):
        web, _site, form = _site_and_form(domain_name, seed)
        spec = form.bindable_inputs[0]
        value = spec.options[0] if spec.options else "anything"
        page = web.fetch(form.submission_url({spec.name: value}))
        assert page.status in (200, 405)


class TestEnumerationProperties:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(domain_name=domain_strategy, seed=seed_strategy)
    def test_range_aware_enumeration_has_no_inverted_ranges(self, domain_name, seed):
        _web, _site, form = _site_and_form(domain_name, seed)
        pairs = CorrelationDetector().detect_ranges(form)
        if not pairs:
            return
        generator = UrlGenerator(range_aware=True, max_urls_per_template=300)
        for pair in pairs:
            template = QueryTemplate((pair.min_input, pair.max_input))
            values = {
                pair.min_input: list(pair.options),
                pair.max_input: list(pair.options),
            }
            for binding in generator.enumerate_bindings(template, values, pairs):
                low = float(binding[pair.min_input])
                high = float(binding[pair.max_input])
                assert low <= high

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(domain_name=st.sampled_from(["used_cars", "books", "government"]), seed=seed_strategy)
    def test_indexability_filter_never_keeps_empty_or_oversized_pages(self, domain_name, seed):
        web, _site, form = _site_and_form(domain_name, seed)
        prober = FormProber(web)
        criterion = IndexabilityCriterion(min_results=1, max_results=25)
        generator = UrlGenerator(criterion=criterion, max_urls_per_template=40)
        select = form.select_inputs[0] if form.select_inputs else None
        if select is None:
            return
        template = QueryTemplate((select.name,))
        candidates = generator.materialize(
            form, template, [{select.name: option} for option in select.options[:10]]
        )
        kept = generator.filter_indexable(form, candidates, prober)
        for candidate in kept:
            assert 1 <= candidate.result_count <= 25
