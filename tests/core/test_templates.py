"""Tests for query templates and the informative-template search."""

from __future__ import annotations

import pytest

from repro.core.templates import QueryTemplate, TemplateSelector
from repro.util.rng import SeededRng


def selector(prober, **overrides) -> TemplateSelector:
    defaults = dict(
        informativeness_threshold=0.2,
        max_dimensions=2,
        probes_per_template=8,
        max_templates=20,
        rng=SeededRng("test-templates"),
    )
    defaults.update(overrides)
    return TemplateSelector(prober, **defaults)


class TestQueryTemplate:
    def test_inputs_are_sorted_and_deduplicated_identity(self):
        assert QueryTemplate(("b", "a")) == QueryTemplate(("a", "b"))
        assert str(QueryTemplate(("b", "a"))) == "a+b"

    def test_dimensions(self):
        assert QueryTemplate(("a",)).dimensions == 1
        assert QueryTemplate(("a", "b", "c")).dimensions == 3

    def test_extend(self):
        extended = QueryTemplate(("a",)).extend("b")
        assert extended.binding_inputs == ("a", "b")
        with pytest.raises(ValueError):
            extended.extend("a")


class TestSampleBindings:
    def test_full_product_when_small(self, car_form, car_prober):
        sel = selector(car_prober)
        template = QueryTemplate(("make",))
        bindings = sel.sample_bindings(template, {"make": ["Toyota", "Honda"]})
        assert bindings == [{"make": "Toyota"}, {"make": "Honda"}]

    def test_sampled_when_product_is_large(self, car_prober):
        sel = selector(car_prober, probes_per_template=5)
        template = QueryTemplate(("a", "b"))
        values = {"a": [str(i) for i in range(10)], "b": [str(i) for i in range(10)]}
        bindings = sel.sample_bindings(template, values)
        assert len(bindings) == 5
        assert len({tuple(sorted(binding.items())) for binding in bindings}) == 5

    def test_empty_value_set_gives_no_bindings(self, car_prober):
        sel = selector(car_prober)
        assert sel.sample_bindings(QueryTemplate(("a", "b")), {"a": ["1"], "b": []}) == []

    def test_sampling_is_deterministic(self, car_prober):
        values = {"a": [str(i) for i in range(20)], "b": [str(i) for i in range(20)]}
        first = selector(car_prober).sample_bindings(QueryTemplate(("a", "b")), values)
        second = selector(car_prober).sample_bindings(QueryTemplate(("a", "b")), values)
        assert first == second


class TestEvaluation:
    def test_select_input_is_informative(self, car_form, car_prober):
        sel = selector(car_prober)
        make_input = car_form.select_inputs[0]
        evaluation = sel.evaluate(
            car_form, QueryTemplate((make_input.name,)), {make_input.name: list(make_input.options)}
        )
        assert evaluation.informative
        assert evaluation.informativeness > 0.5
        assert evaluation.distinct_records > 0

    def test_nonsense_values_are_uninformative(self, car_form, car_prober):
        sel = selector(car_prober)
        search_box = next(spec for spec in car_form.text_inputs)
        evaluation = sel.evaluate(
            car_form,
            QueryTemplate((search_box.name,)),
            {search_box.name: ["zzqx", "qqqqq", "xyzzy42"]},
        )
        assert not evaluation.informative
        assert evaluation.distinct_records == 0


class TestLatticeSearch:
    def test_selects_informative_templates_and_extends(self, car_form, car_prober):
        make_input = car_form.select_inputs[0]
        color_input = car_form.select_inputs[1]
        value_sets = {
            make_input.name: list(make_input.options),
            color_input.name: list(color_input.options),
        }
        evaluations = selector(car_prober).select_templates(car_form, value_sets)
        templates = {str(evaluation.template) for evaluation in evaluations}
        assert make_input.name in templates
        assert color_input.name in templates
        assert any("+" in name for name in templates), "an informative 2-d template should be found"

    def test_uninformative_inputs_are_not_extended(self, car_form, car_prober):
        search_box = next(spec for spec in car_form.text_inputs)
        make_input = car_form.select_inputs[0]
        value_sets = {
            search_box.name: ["zzqx"],  # never returns results
            make_input.name: list(make_input.options),
        }
        evaluations = selector(car_prober).select_templates(car_form, value_sets)
        for evaluation in evaluations:
            assert search_box.name not in evaluation.template.binding_inputs

    def test_max_dimensions_respected(self, car_form, car_prober):
        value_sets = {
            spec.name: list(spec.options) for spec in car_form.select_inputs[:3]
        }
        evaluations = selector(car_prober, max_dimensions=1).select_templates(car_form, value_sets)
        assert all(evaluation.template.dimensions == 1 for evaluation in evaluations)

    def test_max_templates_cap(self, car_form, car_prober):
        value_sets = {spec.name: list(spec.options) for spec in car_form.select_inputs}
        evaluations = selector(car_prober, max_templates=2).select_templates(car_form, value_sets)
        assert len(evaluations) <= 2

    def test_no_values_no_templates(self, car_form, car_prober):
        assert selector(car_prober).select_templates(car_form, {}) == []


class TestIndexBasedSamplingRegression:
    """The deterministic index-based sampler (which replaced rejection
    sampling) must stay seed-stable and fill near-full spaces exactly."""

    def test_near_full_space_yields_exact_count_without_spinning(self, car_prober):
        # Product of 11 barely exceeds the limit of 10 -- the old rejection
        # loop could burn limit*10 attempts here; index sampling always
        # produces exactly `limit` distinct bindings.
        sel = selector(car_prober, probes_per_template=10)
        values = {"a": [str(i) for i in range(11)]}
        bindings = sel.sample_bindings(QueryTemplate(("a",)), values)
        assert len(bindings) == 10
        assert len({binding["a"] for binding in bindings}) == 10

    def test_sample_is_deterministic_across_selectors(self, car_prober):
        values = {
            "a": [str(i) for i in range(25)],
            "b": [str(i) for i in range(25)],
        }
        template = QueryTemplate(("a", "b"))
        first = selector(car_prober).sample_bindings(template, values)
        second = selector(car_prober).sample_bindings(template, values)
        assert first == second
        assert len(first) == 8
        assert len({tuple(sorted(binding.items())) for binding in first}) == 8

    def test_sample_depends_on_template_and_seed(self, car_prober):
        values = {
            "a": [str(i) for i in range(25)],
            "b": [str(i) for i in range(25)],
        }
        base = selector(car_prober).sample_bindings(QueryTemplate(("a", "b")), values)
        reseeded = selector(car_prober, rng=SeededRng("other-seed")).sample_bindings(
            QueryTemplate(("a", "b")), values
        )
        assert base != reseeded

    def test_bindings_follow_product_order(self, car_prober):
        # Sampled positions are sorted, so bindings appear in the same
        # order the full Cartesian product would enumerate them.
        sel = selector(car_prober, probes_per_template=5)
        values = {"a": [str(i) for i in range(30)]}
        bindings = sel.sample_bindings(QueryTemplate(("a",)), values)
        positions = [int(binding["a"]) for binding in bindings]
        assert positions == sorted(positions)

    def test_mixed_radix_decode_on_multi_input_near_full_space(self, car_prober):
        # 3 x 4 = 12 positions, limit 10: every sampled position must decode
        # to a distinct, valid (a, b) pair -- a decode bug (wrong digit
        # order, off-by-one radix) would collide pairs or index out of range.
        sel = selector(car_prober, probes_per_template=10)
        values = {"a": ["0", "1", "2"], "b": ["0", "1", "2", "3"]}
        bindings = sel.sample_bindings(QueryTemplate(("a", "b")), values)
        assert len(bindings) == 10
        pairs = {(binding["a"], binding["b"]) for binding in bindings}
        assert len(pairs) == 10
        assert all(a in values["a"] and b in values["b"] for a, b in pairs)

    def test_total_equal_to_limit_takes_the_full_product_path(self, car_prober):
        # Exactly at the boundary the sampler must enumerate, not sample:
        # the full product in deterministic enumeration order.
        sel = selector(car_prober, probes_per_template=6)
        values = {"a": ["x", "y"], "b": ["1", "2", "3"]}
        bindings = sel.sample_bindings(QueryTemplate(("a", "b")), values)
        assert bindings == [
            {"a": "x", "b": "1"},
            {"a": "x", "b": "2"},
            {"a": "x", "b": "3"},
            {"a": "y", "b": "1"},
            {"a": "y", "b": "2"},
            {"a": "y", "b": "3"},
        ]

    def test_whitespace_only_value_set_gives_no_bindings(self, car_prober):
        sel = selector(car_prober)
        values = {"a": ["1", "2"], "b": ["  ", "\t", ""]}
        assert sel.sample_bindings(QueryTemplate(("a", "b")), values) == []

    def test_blank_values_are_excluded_from_the_product(self, car_prober):
        # Blanks shrink the radix for their input instead of producing
        # bindings with empty submissions.
        sel = selector(car_prober)
        values = {"a": ["", "1", "  ", "2"], "b": ["x"]}
        bindings = sel.sample_bindings(QueryTemplate(("a", "b")), values)
        assert bindings == [{"a": "1", "b": "x"}, {"a": "2", "b": "x"}]
