"""Tests for URL generation, range awareness and the indexability criterion."""

from __future__ import annotations

import pytest

from repro.core.correlations import CorrelationDetector, RangePair
from repro.core.templates import QueryTemplate
from repro.core.urlgen import GeneratedUrl, IndexabilityCriterion, UrlGenerator


class TestIndexabilityCriterion:
    def test_accepts_within_band(self):
        criterion = IndexabilityCriterion(min_results=1, max_results=50)
        assert criterion.accepts(1)
        assert criterion.accepts(50)
        assert not criterion.accepts(0)
        assert not criterion.accepts(51)

    def test_classify(self):
        criterion = IndexabilityCriterion(min_results=2, max_results=10)
        assert criterion.classify(0) == "too_few"
        assert criterion.classify(5) == "indexable"
        assert criterion.classify(100) == "too_many"


class TestRangeAwareEnumeration:
    PAIR = RangePair(
        property_name="price",
        min_input="min_price",
        max_input="max_price",
        options=tuple(str(value) for value in range(1000, 11000, 1000)),  # 10 values
    )

    def test_naive_enumeration_is_quadratic(self):
        generator = UrlGenerator(max_urls_per_template=1000)
        template = QueryTemplate(("min_price", "max_price"))
        values = {"min_price": list(self.PAIR.options), "max_price": list(self.PAIR.options)}
        naive = generator.naive_bindings(template, values)
        assert len(naive) == 100

    def test_range_aware_enumeration_is_linear(self):
        generator = UrlGenerator(max_urls_per_template=1000, range_aware=True)
        template = QueryTemplate(("min_price", "max_price"))
        values = {"min_price": list(self.PAIR.options), "max_price": list(self.PAIR.options)}
        bindings = generator.enumerate_bindings(template, values, [self.PAIR])
        assert len(bindings) == 9  # consecutive bucket pairs
        for binding in bindings:
            assert float(binding["min_price"]) <= float(binding["max_price"])

    def test_range_awareness_avoids_inverted_ranges(self):
        generator = UrlGenerator(range_aware=True)
        template = QueryTemplate(("min_price", "max_price"))
        values = {"min_price": list(self.PAIR.options), "max_price": list(self.PAIR.options)}
        naive = generator.naive_bindings(template, values, limit=1000)
        inverted = [b for b in naive if float(b["min_price"]) > float(b["max_price"])]
        assert inverted, "the naive baseline does generate invalid ranges"
        aware = generator.enumerate_bindings(template, values, [self.PAIR])
        assert all(float(b["min_price"]) <= float(b["max_price"]) for b in aware)

    def test_range_awareness_can_be_disabled(self):
        generator = UrlGenerator(range_aware=False, max_urls_per_template=1000)
        template = QueryTemplate(("min_price", "max_price"))
        values = {"min_price": list(self.PAIR.options), "max_price": list(self.PAIR.options)}
        bindings = generator.enumerate_bindings(template, values, [self.PAIR])
        assert len(bindings) == 100

    def test_range_dimension_combines_with_other_inputs(self):
        generator = UrlGenerator(max_urls_per_template=1000)
        template = QueryTemplate(("make", "min_price", "max_price"))
        values = {
            "make": ["Toyota", "Honda"],
            "min_price": list(self.PAIR.options),
            "max_price": list(self.PAIR.options),
        }
        bindings = generator.enumerate_bindings(template, values, [self.PAIR])
        assert len(bindings) == 2 * 9

    def test_non_numeric_options_give_no_buckets(self):
        pair = RangePair("size", "min_size", "max_size", options=("small", "large"))
        generator = UrlGenerator()
        bindings = generator.enumerate_bindings(
            QueryTemplate(("min_size", "max_size")),
            {"min_size": ["small", "large"], "max_size": ["small", "large"]},
            [pair],
        )
        # Falls back to independent enumeration of the two selects.
        assert len(bindings) == 4

    def test_max_values_per_input_cap(self):
        generator = UrlGenerator(max_values_per_input=3, max_urls_per_template=1000)
        bindings = generator.enumerate_bindings(
            QueryTemplate(("make",)), {"make": [str(i) for i in range(50)]}, []
        )
        assert len(bindings) == 3


class TestMaterializeAndFilter:
    def test_materialize_deduplicates(self, car_form):
        generator = UrlGenerator()
        template = QueryTemplate(("make",))
        bindings = [{"make": "Toyota"}, {"make": "Toyota"}, {"make": "Honda"}]
        urls = generator.materialize(car_form, template, bindings)
        assert len(urls) == 2

    def test_generate_for_templates_counts(self, car_form):
        make_input = car_form.select_inputs[0]
        generator = UrlGenerator(max_urls_per_form=500)
        urls, stats = generator.generate_for_templates(
            car_form,
            [QueryTemplate((make_input.name,))],
            {make_input.name: list(make_input.options)},
        )
        assert len(urls) == len(make_input.options)
        assert stats.candidates == len(make_input.options)
        assert stats.after_dedup == len(urls)

    def test_max_urls_per_form_cap(self, car_form):
        make_input = car_form.select_inputs[0]
        color_input = car_form.select_inputs[1]
        generator = UrlGenerator(max_urls_per_form=5)
        urls, _stats = generator.generate_for_templates(
            car_form,
            [QueryTemplate((make_input.name,)), QueryTemplate((color_input.name,))],
            {
                make_input.name: list(make_input.options),
                color_input.name: list(color_input.options),
            },
        )
        assert len(urls) == 5

    def test_filter_indexable_drops_empty_pages(self, car_form, car_prober):
        make_input = car_form.select_inputs[0]
        generator = UrlGenerator(criterion=IndexabilityCriterion(min_results=1, max_results=1000))
        candidates = generator.materialize(
            car_form,
            QueryTemplate((make_input.name,)),
            [{make_input.name: option} for option in make_input.options]
            + [{make_input.name: "Lada"}],  # not in the data: empty results
        )
        kept = generator.filter_indexable(car_form, candidates, car_prober)
        assert len(kept) < len(candidates)
        assert all(candidate.result_count >= 1 for candidate in kept)

    def test_filter_indexable_drops_too_broad_pages(self, car_form, car_prober):
        generator = UrlGenerator(criterion=IndexabilityCriterion(min_results=1, max_results=5))
        candidates = [
            GeneratedUrl(url=car_form.submission_url({}), bindings={}, template=QueryTemplate(())),
        ]
        stats_holder = generator.filter_indexable(car_form, candidates, car_prober)
        assert stats_holder == []  # the empty submission lists every record -> too many

    def test_filter_records_coverage_stats(self, car_form, car_prober):
        make_input = car_form.select_inputs[0]
        generator = UrlGenerator()
        candidates = generator.materialize(
            car_form,
            QueryTemplate((make_input.name,)),
            [{make_input.name: option} for option in make_input.options],
        )
        from repro.core.urlgen import UrlGenerationStats

        stats = UrlGenerationStats()
        kept = generator.filter_indexable(car_form, candidates, car_prober, stats)
        assert stats.kept == len(kept)
        assert stats.records_covered > 0
        assert stats.probes_issued == len(candidates)


class TestGeneratedCarFormEndToEnd:
    def test_detected_ranges_reduce_urls_without_losing_coverage(self, car_form, car_prober, car_site):
        """The paper's 120-vs-10 example, measured on a generated form."""
        detector = CorrelationDetector()
        pairs = detector.detect_ranges(car_form)
        price_pair = next(pair for pair in pairs if pair.property_name == "price")
        values = {
            price_pair.min_input: list(price_pair.options),
            price_pair.max_input: list(price_pair.options),
        }
        template = QueryTemplate((price_pair.min_input, price_pair.max_input))

        aware = UrlGenerator(range_aware=True, max_urls_per_template=1000)
        naive = UrlGenerator(range_aware=False, max_urls_per_template=1000)
        aware_bindings = aware.enumerate_bindings(template, values, pairs)
        naive_bindings = naive.enumerate_bindings(template, values, pairs)
        assert len(naive_bindings) >= 10 * len(aware_bindings) / 2

        def coverage(bindings):
            covered = set()
            for binding in bindings:
                covered |= car_prober.probe(car_form, binding).signature.record_ids
            return covered

        assert coverage(aware_bindings) == coverage(naive_bindings)
