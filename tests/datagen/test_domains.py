"""Tests for domain specifications."""

from __future__ import annotations

import pytest

from repro.datagen.domains import domain, domain_names, iter_domains
from repro.relational.schema import DataType


class TestRegistry:
    def test_all_expected_domains_registered(self):
        names = domain_names()
        expected = {
            "used_cars", "real_estate", "apartments", "jobs", "recipes",
            "books", "events", "government", "store_locator", "media_catalog",
        }
        assert expected <= set(names)

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            domain("underwater_basket_weaving")

    def test_iter_domains_sorted(self):
        names = [spec.name for spec in iter_domains()]
        assert names == sorted(names)


class TestSpecConsistency:
    @pytest.mark.parametrize("name", domain_names())
    def test_schema_builds(self, name):
        schema = domain(name).schema()
        assert schema.primary_key == "id"
        assert schema.has_column("id")

    @pytest.mark.parametrize("name", domain_names())
    def test_form_columns_exist_in_schema(self, name):
        spec = domain(name)
        schema = spec.schema()
        for column in spec.form_columns:
            assert schema.has_column(column), f"{name}: {column} not in schema"

    @pytest.mark.parametrize("name", domain_names())
    def test_search_columns_are_searchable_text(self, name):
        spec = domain(name)
        schema = spec.schema()
        for column in spec.search_columns:
            assert schema.column(column).searchable

    @pytest.mark.parametrize("name", domain_names())
    def test_range_inputs_are_numeric(self, name):
        spec = domain(name)
        schema = spec.schema()
        for column in spec.range_inputs:
            assert schema.column(column).dtype.is_numeric

    @pytest.mark.parametrize("name", domain_names())
    def test_title_column_exists(self, name):
        spec = domain(name)
        assert spec.schema().has_column(spec.title_column)

    def test_used_cars_has_expected_shape(self):
        spec = domain("used_cars")
        assert "make" in spec.select_inputs
        assert spec.typed_text_inputs.get("zipcode") == "zipcode"
        assert "price" in spec.range_inputs
        assert spec.has_search_box

    def test_store_locator_is_typed_only(self):
        spec = domain("store_locator")
        assert not spec.has_search_box
        assert "zipcode" in spec.typed_text_inputs

    def test_media_catalog_is_database_selection_domain(self):
        spec = domain("media_catalog")
        assert spec.category_column == "category"
        assert spec.has_search_box

    def test_government_has_low_commercial_value(self):
        assert domain("government").commercial_value < domain("used_cars").commercial_value

    def test_zipcode_columns_use_zipcode_type(self):
        for spec in iter_domains():
            for column, semantic in spec.typed_text_inputs.items():
                if semantic == "zipcode":
                    assert spec.schema().column(column).dtype is DataType.ZIPCODE
