"""Tests for the synthetic row generators."""

from __future__ import annotations

import pytest

from repro.datagen import vocab
from repro.datagen.domains import domain, domain_names
from repro.datagen.generators import generate_rows, supported_domains
from repro.util.rng import SeededRng


class TestGeneratorRegistry:
    def test_every_domain_has_a_generator(self):
        assert set(supported_domains()) == set(domain_names())

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            generate_rows("not_a_domain", 5, SeededRng(1))


class TestGeneratedRows:
    @pytest.mark.parametrize("name", domain_names())
    def test_rows_validate_against_schema(self, name):
        schema = domain(name).schema()
        for row in generate_rows(name, 20, SeededRng(7)):
            schema.validate_row(row)

    @pytest.mark.parametrize("name", domain_names())
    def test_ids_are_contiguous_from_one(self, name):
        rows = generate_rows(name, 15, SeededRng(3))
        assert [row["id"] for row in rows] == list(range(1, 16))

    @pytest.mark.parametrize("name", domain_names())
    def test_determinism(self, name):
        first = generate_rows(name, 10, SeededRng("fixed"))
        second = generate_rows(name, 10, SeededRng("fixed"))
        assert first == second

    @pytest.mark.parametrize("name", domain_names())
    def test_titles_and_descriptions_nonempty(self, name):
        spec = domain(name)
        for row in generate_rows(name, 10, SeededRng(5)):
            assert str(row[spec.title_column]).strip()
            assert str(row["description"]).strip()

    def test_used_car_model_matches_make(self):
        for row in generate_rows("used_cars", 50, SeededRng(11)):
            assert row["model"] in vocab.CAR_MAKES_MODELS[row["make"]]

    def test_used_car_zipcode_matches_city_prefix(self):
        prefixes = {city: prefix for city, _state, prefix in vocab.CITIES}
        for row in generate_rows("used_cars", 50, SeededRng(11)):
            assert row["zipcode"].startswith(prefixes[row["city"]])

    def test_description_mentions_structured_values(self):
        for row in generate_rows("used_cars", 30, SeededRng(13)):
            description = row["description"].lower()
            assert row["make"].lower() in description
            assert row["city"].lower().split()[0] in description

    def test_media_items_cover_all_categories(self):
        rows = generate_rows("media_catalog", 200, SeededRng(17))
        categories = {row["category"] for row in rows}
        assert categories == set(vocab.MEDIA_CATEGORIES)

    def test_media_software_titles_differ_from_movie_titles(self):
        rows = generate_rows("media_catalog", 300, SeededRng(19))
        software_words = {
            word for row in rows if row["category"] == "software" for word in row["title"].lower().split()
        }
        assert software_words & set(vocab.SOFTWARE_WORDS)

    def test_government_years_in_range(self):
        for row in generate_rows("government", 40, SeededRng(23)):
            assert 1998 <= row["year"] <= 2008

    def test_jobs_posted_date_is_iso(self):
        for row in generate_rows("jobs", 20, SeededRng(29)):
            year, month, day = row["posted_date"].split("-")
            assert len(year) == 4 and 1 <= int(month) <= 12 and 1 <= int(day) <= 28

    def test_store_phone_format(self):
        for row in generate_rows("store_locator", 20, SeededRng(31)):
            area, mid, last = row["phone"].split("-")
            assert mid == "555" and len(area) == 3 and len(last) == 4

    def test_zero_rows(self):
        assert generate_rows("books", 0, SeededRng(1)) == []
