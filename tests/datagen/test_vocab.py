"""Tests for the shared vocabularies."""

from __future__ import annotations

import pytest

from repro.datagen import vocab


class TestGeography:
    def test_cities_have_state_and_prefix(self):
        for city, state, prefix in vocab.CITIES:
            assert city and state and prefix
            assert len(prefix) == 3 and prefix.isdigit()

    def test_city_names_match_cities(self):
        assert len(vocab.CITY_NAMES) == len(vocab.CITIES)

    def test_states_have_full_names(self):
        for state in vocab.US_STATES:
            assert state in vocab.STATE_NAMES

    def test_zipcode_for_known_city(self):
        code = vocab.zipcode_for("Boston", 7)
        assert len(code) == 5
        assert code.startswith("021")

    def test_zipcode_for_unknown_city(self):
        with pytest.raises(KeyError):
            vocab.zipcode_for("Atlantis", 1)

    def test_zipcode_suffix_cycles(self):
        assert vocab.zipcode_for("Boston", 105) == vocab.zipcode_for("Boston", 5)

    def test_all_zipcodes_are_valid(self):
        assert len(vocab.ALL_ZIPCODES) >= 100
        assert all(len(code) == 5 and code.isdigit() for code in vocab.ALL_ZIPCODES)


class TestVehicles:
    def test_every_make_has_models(self):
        for make, models in vocab.CAR_MAKES_MODELS.items():
            assert make
            assert len(models) >= 3

    def test_makes_list_matches_dict(self):
        assert set(vocab.CAR_MAKES) == set(vocab.CAR_MAKES_MODELS.keys())


class TestOtherVocabularies:
    def test_no_duplicate_job_titles(self):
        assert len(vocab.JOB_TITLES) == len(set(vocab.JOB_TITLES))

    def test_media_categories(self):
        assert set(vocab.MEDIA_CATEGORIES) == {"movies", "music", "software", "games"}

    def test_languages_have_suffixes(self):
        for language in vocab.LANGUAGES:
            assert language in vocab.LANGUAGE_SUFFIXES

    def test_head_topics_exist(self):
        assert len(vocab.CELEBRITIES) >= 10
        assert len(vocab.POPULAR_PRODUCTS) >= 10

    def test_gov_topics_nonempty(self):
        assert len(vocab.GOV_TOPICS) >= 15
        assert len(vocab.AGENCIES) >= 10
