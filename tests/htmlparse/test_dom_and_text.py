"""Tests for DOM parsing and text extraction."""

from __future__ import annotations

from repro.htmlparse.dom import parse_html
from repro.htmlparse.text import extract_text, extract_title


SAMPLE = """
<html><head><title>Sample Page</title><style>body {color: red}</style></head>
<body>
  <h1 class="main">Heading</h1>
  <div id="content">
    <p>First paragraph with <a href="/x">a link</a>.</p>
    <p>Second paragraph.</p>
  </div>
  <script>var x = 1;</script>
  <img src="pic.png"/>
</body></html>
"""


class TestDomParsing:
    def test_find_all_and_first(self):
        root = parse_html(SAMPLE)
        assert len(root.find_all("p")) == 2
        assert root.find_first("h1").attr("class") == "main"
        assert root.find_first("nonexistent") is None

    def test_nested_structure(self):
        root = parse_html(SAMPLE)
        content = root.find_first("div")
        assert content.attr("id") == "content"
        assert len(content.direct_children("p")) == 2

    def test_text_collection(self):
        root = parse_html(SAMPLE)
        text = root.find_first("h1").text()
        assert text == "Heading"

    def test_void_tags_do_not_nest(self):
        root = parse_html("<div><img src='a.png'><p>after image</p></div>")
        div = root.find_first("div")
        assert [child.tag for child in div.children] == ["img", "p"]

    def test_self_closing_tag(self):
        root = parse_html("<div><input type='text' name='q'/><span>x</span></div>")
        assert root.find_first("input").attr("name") == "q"

    def test_mismatched_tags_tolerated(self):
        root = parse_html("<div><b>bold <i>both</b> italic?</i></div>")
        assert root.find_first("b") is not None
        assert "bold" in root.text()

    def test_walk_includes_all_nodes(self):
        root = parse_html(SAMPLE)
        tags = [node.tag for node in root.walk()]
        assert "html" in tags and "p" in tags and "#document" in tags

    def test_attr_default(self):
        root = parse_html("<p>x</p>")
        assert root.find_first("p").attr("class", "none") == "none"

    def test_parent_links(self):
        root = parse_html("<div><p>x</p></div>")
        paragraph = root.find_first("p")
        assert paragraph.parent.tag == "div"


class TestTextExtraction:
    def test_title_extraction(self):
        assert extract_title(SAMPLE) == "Sample Page"

    def test_missing_title(self):
        assert extract_title("<html><body>no title</body></html>") == ""

    def test_text_skips_script_and_style(self):
        text = extract_text(SAMPLE)
        assert "var x" not in text
        assert "color: red" not in text

    def test_text_includes_title_by_default(self):
        assert "Sample Page" in extract_text(SAMPLE)
        assert "Sample Page" not in extract_text(SAMPLE, include_title=False)

    def test_text_includes_body_content(self):
        text = extract_text(SAMPLE)
        assert "First paragraph" in text
        assert "a link" in text

    def test_entity_decoding(self):
        assert "cats & dogs" in extract_text("<p>cats &amp; dogs</p>")

    def test_empty_document(self):
        assert extract_text("") == ""
