"""Tests for form, link and table extraction."""

from __future__ import annotations

from repro.htmlparse.forms import extract_forms
from repro.htmlparse.links import extract_links
from repro.htmlparse.tables import extract_tables


FORM_HTML = """
<html><body>
<form id="carsearch" action="/search" method="get">
  <label>Keywords <input type="text" name="q"/></label>
  <label>Make
    <select name="make">
      <option value="">-- any --</option>
      <option value="Toyota">Toyota</option>
      <option value="Honda" selected>Honda</option>
    </select>
  </label>
  <input type="hidden" name="lang" value="en"/>
  <input type="submit" value="Go"/>
</form>
<form action="/buy" method="post">
  <input type="text" name="card_number"/>
  <textarea name="notes"></textarea>
</form>
</body></html>
"""


class TestFormExtraction:
    def test_two_forms_found(self):
        forms = extract_forms(FORM_HTML)
        assert len(forms) == 2

    def test_get_form_metadata(self):
        form = extract_forms(FORM_HTML)[0]
        assert form.action == "/search"
        assert form.is_get
        assert form.form_id == "carsearch"

    def test_input_kinds(self):
        form = extract_forms(FORM_HTML)[0]
        kinds = {spec.name: spec.kind for spec in form.inputs}
        assert kinds == {"q": "text", "make": "select", "lang": "hidden"}

    def test_select_options_and_default(self):
        form = extract_forms(FORM_HTML)[0]
        make = form.input_named("make")
        assert make.options == ("Toyota", "Honda")
        assert make.default == "Honda"

    def test_submit_buttons_excluded(self):
        form = extract_forms(FORM_HTML)[0]
        assert form.input_named("Go") is None

    def test_labels_attached(self):
        form = extract_forms(FORM_HTML)[0]
        assert "Keywords" in form.input_named("q").label
        assert "Make" in form.input_named("make").label

    def test_bindable_inputs_exclude_hidden(self):
        form = extract_forms(FORM_HTML)[0]
        assert {spec.name for spec in form.bindable_inputs} == {"q", "make"}

    def test_post_form_and_textarea(self):
        form = extract_forms(FORM_HTML)[1]
        assert not form.is_get
        assert form.input_named("notes").kind == "text"

    def test_page_url_recorded(self):
        forms = extract_forms(FORM_HTML, page_url="http://a.com/")
        assert forms[0].page_url == "http://a.com/"

    def test_no_forms(self):
        assert extract_forms("<html><body><p>nothing</p></body></html>") == []


LINK_HTML = """
<html><body>
<a href="http://other.com/page">absolute</a>
<a href="/item?id=5">relative root</a>
<a href="detail.html">relative sibling</a>
<a href="#section">fragment</a>
<a href="javascript:void(0)">script</a>
<a href="/item?id=5">duplicate</a>
</body></html>
"""


class TestLinkExtraction:
    def test_absolute_and_relative_links(self):
        links = extract_links(LINK_HTML, page_url="http://site.com/listing/index.html")
        assert "http://other.com/page" in links
        assert "http://site.com/item?id=5" in links
        assert "http://site.com/listing/detail.html" in links

    def test_fragment_and_javascript_dropped(self):
        links = extract_links(LINK_HTML, page_url="http://site.com/")
        assert not any("#" in link or "javascript" in link for link in links)

    def test_duplicates_removed(self):
        links = extract_links(LINK_HTML, page_url="http://site.com/")
        assert links.count("http://site.com/item?id=5") == 1

    def test_relative_links_without_base_are_dropped(self):
        links = extract_links(LINK_HTML)
        assert links == ["http://other.com/page"]


TABLE_HTML = """
<html><body>
<table class="results">
  <tr><th>make</th><th>model</th><th>price</th></tr>
  <tr><td>Toyota</td><td>Camry</td><td>5000</td></tr>
  <tr><td>Honda</td><td>Civic</td><td>6000</td></tr>
</table>
<table class="record">
  <tr><th>make</th><td>Ford</td></tr>
  <tr><th>price</th><td>3000</td></tr>
  <tr><th>color</th><td>red</td></tr>
</table>
<table><tr><td>lonely</td></tr></table>
</body></html>
"""


class TestTableExtraction:
    def test_header_table(self):
        tables = extract_tables(TABLE_HTML)
        header_table = tables[0]
        assert header_table.header == ("make", "model", "price")
        assert header_table.row_count == 2
        assert header_table.column("price") == ["5000", "6000"]
        assert header_table.column(0) == ["Toyota", "Honda"]

    def test_as_records(self):
        records = extract_tables(TABLE_HTML)[0].as_records()
        assert records[0] == {"make": "Toyota", "model": "Camry", "price": "5000"}

    def test_attribute_value_table(self):
        detail = extract_tables(TABLE_HTML)[1]
        assert not detail.has_header
        assert ("make", "Ford") in detail.rows
        assert detail.row_count == 3

    def test_headerless_single_cell_table(self):
        plain = extract_tables(TABLE_HTML)[2]
        assert plain.rows == (("lonely",),)

    def test_column_errors(self):
        table = extract_tables(TABLE_HTML)[0]
        try:
            table.column("missing")
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")

    def test_css_class_and_page_url(self):
        tables = extract_tables(TABLE_HTML, page_url="http://x.com/p")
        assert tables[0].css_class == "results"
        assert tables[0].page_url == "http://x.com/p"

    def test_no_tables(self):
        assert extract_tables("<html><body></body></html>") == []
