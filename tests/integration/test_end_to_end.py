"""Integration tests: the full story of the paper on one small world.

These tests exercise the interactions between subsystems (crawl -> surface ->
index -> query -> analyze; virtual integration vs. surfacing; semantic
server over the same web) rather than individual modules.
"""

from __future__ import annotations

import pytest

from repro.analysis.longtail import deep_web_impact
from repro.core.surfacer import Surfacer, SurfacingConfig
from repro.search.crawler import Crawler
from repro.search.engine import SOURCE_DEEP_CRAWLED, SOURCE_SURFACE, SOURCE_SURFACED, SearchEngine
from repro.search.querylog import KIND_TAIL
from repro.virtual.vertical import VerticalSearchEngine
from repro.webspace.loadmeter import AGENT_SURFACER, AGENT_VIRTUAL
from repro.webtables.semantic_server import SemanticServer


class TestSurfacingStory:
    def test_deep_content_invisible_before_surfacing(self, crawled_world):
        counts = crawled_world.engine.count_by_source()
        assert counts.get(SOURCE_SURFACE, 0) > 0
        # Without surfacing, only homepages (and a few browse links) of deep
        # sites are indexed: a tiny fraction of the records.
        deep_docs = counts.get(SOURCE_DEEP_CRAWLED, 0)
        assert deep_docs < 0.2 * crawled_world.web.total_deep_records()

    def test_surfacing_exposes_most_deep_records(self, surfaced_world):
        total_records = surfaced_world.web.total_deep_records()
        covered = sum(result.records_covered for result in surfaced_world.surfacing_results)
        get_form_records = sum(
            surfaced_world.web.site(result.host).size()
            for result in surfaced_world.surfacing_results
            if result.forms_surfaced > 0
        )
        assert covered > 0.6 * get_form_records
        assert surfaced_world.engine.count_by_source().get(SOURCE_SURFACED, 0) > 0
        assert total_records >= get_form_records

    def test_tail_queries_answered_from_surfaced_pages(self, surfaced_world):
        log = surfaced_world.query_log
        tail_queries = [query for query in log.by_kind(KIND_TAIL)][:40]
        answered = 0
        for query in tail_queries:
            results = surfaced_world.engine.search(query.text, k=10)
            if any(result.source == SOURCE_SURFACED for result in results):
                answered += 1
        assert answered / max(1, len(tail_queries)) > 0.5

    def test_fortuitous_answering(self, surfaced_world):
        """A query phrased around record content (not form fields) is still
        answered because the surfaced page text matches -- the paper's
        'SIGMOD award MIT professor' scenario."""
        site = next(
            surfaced_world.web.site(result.host)
            for result in surfaced_world.surfacing_results
            if result.urls_indexed > 0
        )
        table = next(iter(site.database.tables()))
        record = table.get(table.primary_keys()[0])
        # Use distinctive content words from the record's description.
        words = [word for word in str(record["description"]).split() if len(word) > 4][:3]
        query = " ".join(words)
        results = surfaced_world.engine.search(query, k=10)
        assert any(result.host == site.host for result in results)

    def test_crawler_discovers_more_after_seeding(self, surfaced_world):
        """Once surfaced URLs are indexed, a follow-up crawl of their links
        discovers detail pages the original crawl could never reach."""
        engine = surfaced_world.engine
        web = surfaced_world.web
        surfaced_docs = engine.documents(source=SOURCE_SURFACED)[:5]
        crawler = Crawler(web, engine)
        before = len(engine)
        stats = crawler.crawl(seeds=[doc.url for doc in surfaced_docs], max_pages=60, max_depth=2)
        assert stats.fetched > 0
        assert len(engine) > before


class TestSurfacingVsVirtualIntegration:
    @pytest.fixture(scope="class")
    def vertical(self, surfaced_world):
        engine = VerticalSearchEngine(surfaced_world.web, domain="used_cars")
        engine.register_sites(surfaced_world.web.deep_sites())
        return engine

    def test_query_time_load_profile(self, surfaced_world, vertical):
        """Surfacing loads sites off-line; virtual integration loads them at
        query time."""
        web = surfaced_world.web
        if vertical.source_count == 0:
            pytest.skip("no used-car site in this world")
        virtual_before = web.load_meter.total(agent=AGENT_VIRTUAL)
        for _ in range(5):
            vertical.keyword_query("used toyota")
        virtual_after = web.load_meter.total(agent=AGENT_VIRTUAL)
        assert virtual_after > virtual_before
        # Surfacer load was spent before any query arrived and does not grow
        # with the query stream.
        surfacer_before = web.load_meter.total(agent=AGENT_SURFACER)
        surfaced_world.engine.search("used toyota")
        assert web.load_meter.total(agent=AGENT_SURFACER) == surfacer_before

    def test_vertical_supports_structured_slicing(self, surfaced_world, vertical):
        if vertical.source_count == 0:
            pytest.skip("no used-car site in this world")
        answer = vertical.structured_query({"color": "red"})
        assert all(record.get("color") == "red" for record in answer.records)


class TestSemanticServerIntegration:
    def test_services_built_from_surfaced_web(self, surfaced_world):
        server = SemanticServer.from_web(surfaced_world.web, detail_pages_per_site=6)
        attributes = set(server.acsdb.attributes())
        assert "price" in attributes or "year" in attributes
        suggestions = server.autocomplete(["city", "state"])
        assert suggestions, "geo attributes should have common co-attributes"


class TestImpactAnalysisIntegration:
    def test_full_pipeline_produces_long_tail_shape(self, surfaced_world):
        report = deep_web_impact(surfaced_world.engine, surfaced_world.query_log, k=10)
        assert report.queries_with_deep_result > 0
        assert report.tail_impact_rate >= report.head_impact_rate
        # Impact is spread over multiple forms, not one dominant site.
        if len(report.form_impacts) >= 2:
            assert report.share_of_top_forms(1) < 1.0
