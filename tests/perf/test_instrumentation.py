"""Unit tests for the perf registry and the observer bridge (tier-1 safe)."""

from __future__ import annotations

import threading

from repro import DeepWebService, SurfacingConfig, WebConfig
from repro.perf import PerfObserver, PerfRegistry, default_registry


class TestPerfRegistry:
    def test_counters_accumulate(self):
        registry = PerfRegistry()
        registry.increment("probes")
        registry.increment("probes", 4)
        assert registry.counter("probes") == 5
        assert registry.counter("unknown") == 0

    def test_timers_accumulate_calls_and_seconds(self):
        registry = PerfRegistry()
        with registry.timer("stage"):
            pass
        registry.record_seconds("stage", 0.25)
        assert registry.timer_calls("stage") == 2
        assert registry.timer_seconds("stage") >= 0.25

    def test_timer_records_on_exception(self):
        registry = PerfRegistry()
        try:
            with registry.timer("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert registry.timer_calls("failing") == 1

    def test_as_dict_shape_and_reset(self):
        registry = PerfRegistry()
        registry.increment("a")
        registry.record_seconds("t", 0.5)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["timers"]["t"]["calls"] == 1
        registry.reset()
        assert registry.as_dict() == {"counters": {}, "timers": {}}

    def test_thread_safety_of_increments(self):
        registry = PerfRegistry()

        def spin():
            for _ in range(2000):
                registry.increment("shared")
                registry.record_seconds("shared-timer", 0.0)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared") == 8000
        assert registry.timer_calls("shared-timer") == 8000

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestPerfObserver:
    def test_observer_collects_stage_and_site_metrics(self):
        registry = PerfRegistry()
        service = (
            DeepWebService.build()
            .web(WebConfig(total_deep_sites=2, surface_site_count=1, max_records=40, seed=3))
            .surfacing(SurfacingConfig(max_urls_per_form=60))
            .observer(PerfObserver(registry))
            .create()
        )
        service.surface()
        assert registry.counter("sites.surfaced") == 2
        assert registry.counter("urls.indexed") > 0
        assert registry.timer_calls("site.surface") == 2
        snapshot = registry.as_dict()
        stage_timers = [name for name in snapshot["timers"] if name.startswith("stage.")]
        assert "stage.discover-forms" in stage_timers
