"""Opt-in perf regression smoke tests (scripts/perf.sh, REPRO_PERF=1).

Timing assertions are inherently machine-sensitive, so these are excluded
from tier-1: they run only under the ``perf`` marker with generous
thresholds, catching order-of-magnitude regressions rather than noise.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import DeepWebService, SurfacingConfig, WebConfig
from repro.core.informativeness import (
    SignatureCache,
    default_signature_cache,
    set_default_signature_cache,
)

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        not os.environ.get("REPRO_PERF"),
        reason="perf regression tests are opt-in (REPRO_PERF=1 or scripts/perf.sh)",
    ),
]


def timed_surface(cached: bool) -> tuple[float, int]:
    previous = set_default_signature_cache(
        SignatureCache() if cached else SignatureCache(max_entries=0)
    )
    try:
        service = (
            DeepWebService.build()
            .web(WebConfig(total_deep_sites=6, surface_site_count=1, max_records=120, seed=5))
            .surfacing(SurfacingConfig(max_urls_per_form=120))
            .create()
        )
        service.crawl(max_pages=300)
        started = time.perf_counter()
        results = service.surface()
        return time.perf_counter() - started, sum(r.urls_indexed for r in results)
    finally:
        set_default_signature_cache(previous)


class TestPerfSmoke:
    def test_signature_cache_speeds_up_surfacing(self):
        uncached_seconds, uncached_urls = timed_surface(cached=False)
        cached_seconds, cached_urls = timed_surface(cached=True)
        assert cached_urls == uncached_urls
        # Generous bound: caching must never make surfacing meaningfully slower.
        assert cached_seconds < uncached_seconds * 1.1

    def test_cache_hit_rate_is_substantial(self):
        previous = set_default_signature_cache(SignatureCache())
        try:
            service = (
                DeepWebService.build()
                .web(WebConfig(total_deep_sites=4, surface_site_count=1, max_records=80, seed=3))
                .surfacing(SurfacingConfig(max_urls_per_form=80))
                .create()
            )
            service.surface()
            stats = default_signature_cache().stats()
            assert stats["hits"] + stats["misses"] > 0
            assert stats["hit_rate"] > 0.3
        finally:
            set_default_signature_cache(previous)
