"""Smoke coverage for ``examples/durable_service.py``."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "examples" / "durable_service.py"


def load_example():
    spec = importlib.util.spec_from_file_location("durable_service", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
@pytest.mark.persist
def test_durable_example_runs_end_to_end(tmp_path, capsys):
    example = load_example()
    exit_code = example.main(str(tmp_path / "state"))
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "sites journaled" in out
    assert "byte-identical to the cold build, 0 surfacer fetches" in out
    assert "(restored from snapshot)" in out
    assert "with 0 surfacer fetches" in out
    assert (tmp_path / "state" / "store.sqlite3").exists()
    assert (tmp_path / "state" / "surfacing.journal").exists()
    assert (tmp_path / "state" / "snapshot.json").exists()
