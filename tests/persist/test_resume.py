"""Resume-aware surfacing: interrupted runs finish byte-identical.

The contract from the issue: interrupt ``surface_many`` partway, resume
against the same journal, and the final output -- per-site results,
stored documents, rankings -- is byte-identical to a run that was never
interrupted.  Both crash windows are exercised: before a site completes
(the staged records never reach journal or store) and after journaling
but before the store replay (the resume heals the store by URL-dedup).
Journal integrity failures must be loud: mid-file corruption, tampered
blobs and config drift all refuse to resume; only a torn final line
(the one state a crash mid-append can produce) is forgiven.
"""

from __future__ import annotations

import json

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.perf.benchreport import normalized_index, normalized_results
from repro.persist import (
    JournalConfigMismatchError,
    JournalCorruptionError,
    ResumableSurfacingScheduler,
    SurfacingJournal,
    record_content_hash,
)
from repro.pipeline.observer import PipelineObserver
from repro.store.records import IngestRecord
from repro.webspace.loadmeter import AGENT_SURFACER
from repro.webspace.sitegen import WebConfig

pytestmark = pytest.mark.persist

WEB = WebConfig(total_deep_sites=5, surface_site_count=1, max_records=60, seed=13)
SURFACING = SurfacingConfig(max_urls_per_form=60)


class CrashAt(PipelineObserver):
    """Raises when surfacing reaches the site at ``index`` (simulated crash)."""

    def __init__(self, index: int) -> None:
        self.index = index

    def on_site_start(self, site, index, total) -> None:
        if index == self.index:
            raise RuntimeError(f"simulated crash at site {index} ({site.host})")


def build_service(journal=None, observer=None) -> DeepWebService:
    builder = DeepWebService.build().web(WEB).surfacing(SURFACING)
    if journal is not None:
        builder = builder.scheduler(ResumableSurfacingScheduler(journal))
    if observer is not None:
        builder = builder.observer(observer)
    return builder.create()


@pytest.fixture(scope="module")
def clean_run():
    service = build_service()
    service.surface()
    return (
        normalized_results(service.results),
        normalized_index(service.engine),
        [(r.doc_id, r.url, r.score) for r in service.search("toyota price", k=50)],
    )


def test_interrupted_then_resumed_output_is_byte_identical(tmp_path, clean_run):
    expected_results, expected_index, expected_search = clean_run
    journal_path = tmp_path / "surfacing.journal"

    crashed = build_service(journal=journal_path, observer=CrashAt(2))
    with pytest.raises(RuntimeError, match="simulated crash"):
        crashed.surface()
    # The two completed sites are journaled; the interrupted one left
    # nothing behind -- not in the journal, not in the store.
    journal = SurfacingJournal(journal_path)
    assert len(journal) == 2
    hosts = {doc.host for doc in crashed.engine.documents()}
    assert hosts == set(journal.completed_hosts)

    resumed = build_service(journal=journal_path)
    results = resumed.surface()
    assert len(results) == len(expected_results)
    assert normalized_results(results) == expected_results
    assert normalized_index(resumed.engine) == expected_index
    assert [
        (r.doc_id, r.url, r.score) for r in resumed.search("toyota price", k=50)
    ] == expected_search
    # The journaled sites were replayed, not refetched: the resume run's
    # web saw surfacer traffic only for the sites the crash never reached.
    for host in journal.completed_hosts:
        assert resumed.web.load_meter.total(host=host, agent=AGENT_SURFACER) == 0


def test_crash_between_surfacing_and_journaling_leaves_no_trace(
    tmp_path, clean_run, monkeypatch
):
    """Crash in the other window: the site surfaced but journaling failed.
    Staging means the store is untouched too, so the site re-surfaces
    from scratch on resume with identical output."""
    expected_results, expected_index, _ = clean_run
    journal_path = tmp_path / "surfacing.journal"

    service = build_service(journal=journal_path)
    original = SurfacingJournal.record_site
    state = {"armed": True}

    def exploding_record_site(self, host, records, result):
        if state["armed"] and len(self._sites) == 1:
            state["armed"] = False
            raise OSError("simulated disk failure before journal append")
        return original(self, host, records, result)

    monkeypatch.setattr(SurfacingJournal, "record_site", exploding_record_site)
    with pytest.raises(OSError, match="simulated disk failure"):
        service.surface()
    journal = SurfacingJournal(journal_path)
    assert len(journal) == 1  # the failed site is absent,
    assert {doc.host for doc in service.engine.documents()} == set(
        journal.completed_hosts
    )  # ...and its staged records never reached the store

    monkeypatch.setattr(SurfacingJournal, "record_site", original)
    resumed = build_service(journal=journal_path)
    results = resumed.surface()
    assert normalized_results(results) == expected_results
    assert normalized_index(resumed.engine) == expected_index


def test_fully_journaled_run_refetches_nothing(tmp_path, clean_run):
    expected_results, expected_index, _ = clean_run
    journal_path = tmp_path / "surfacing.journal"
    first = build_service(journal=journal_path)
    first.surface()

    warm = build_service(journal=journal_path)
    results = warm.surface()
    assert normalized_results(results) == expected_results
    assert normalized_index(warm.engine) == expected_index
    assert warm.web.load_meter.total(agent=AGENT_SURFACER) == 0


def test_resume_under_different_config_is_refused(tmp_path):
    journal_path = tmp_path / "surfacing.journal"
    service = build_service(journal=journal_path)
    service.surface_many(service.web.deep_sites()[:1])

    drifted = (
        DeepWebService.build()
        .web(WEB)
        .surfacing(SurfacingConfig(max_urls_per_form=61))
        .scheduler(ResumableSurfacingScheduler(journal_path))
        .create()
    )
    with pytest.raises(JournalConfigMismatchError, match="different"):
        drifted.surface_many(drifted.web.deep_sites()[1:2])


# -- journal file integrity --------------------------------------------------


def sample_record(n: int) -> IngestRecord:
    return IngestRecord(
        url=f"http://host.example.com/r/{n}",
        host="host.example.com",
        title=f"r{n}",
        text=f"record {n}",
        tokens=["record", str(n)],
        source="surfaced",
    )


def journal_with_one_site(path) -> SurfacingJournal:
    journal = SurfacingJournal(path)
    journal.ensure_config(SURFACING)
    from repro.core.surfacer import SiteSurfacingResult

    result = SiteSurfacingResult(host="host.example.com", domain="auto")
    journal.record_site("host.example.com", [sample_record(1), sample_record(2)], result)
    return journal


def test_torn_final_line_is_forgiven(tmp_path):
    path = tmp_path / "torn.journal"
    journal_with_one_site(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "site", "host": "half-writ')  # no newline, torn
    reloaded = SurfacingJournal(path)
    assert reloaded.completed_hosts == ["host.example.com"]
    records, result = reloaded.site_entry("host.example.com")
    assert [record.url for record in records] == [
        "http://host.example.com/r/1",
        "http://host.example.com/r/2",
    ]
    assert result.host == "host.example.com"


def test_mid_file_corruption_is_refused(tmp_path):
    path = tmp_path / "corrupt.journal"
    journal_with_one_site(path)
    lines = path.read_text().splitlines()
    lines[1] = "@@not json@@"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptionError, match="undecodable entry at line 2"):
        SurfacingJournal(path)


def test_tampered_blob_is_refused(tmp_path):
    path = tmp_path / "tampered.journal"
    journal_with_one_site(path)
    lines = path.read_text().splitlines()
    entry = json.loads(lines[1])
    assert entry["kind"] == "blob"
    entry["record"]["text"] = "tampered"
    lines[1] = json.dumps(entry, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptionError, match="content-hash check"):
        SurfacingJournal(path)


def test_site_referencing_unknown_blob_is_refused(tmp_path):
    path = tmp_path / "dangling.journal"
    journal_with_one_site(path)
    lines = path.read_text().splitlines()
    entry = json.loads(lines[-1])
    assert entry["kind"] == "site"
    entry["records"].append("0" * 64)
    lines[-1] = json.dumps(entry, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptionError, match="unknown blob"):
        SurfacingJournal(path)


def test_shared_records_are_journaled_once(tmp_path):
    """Content-hash dedup: a record seen by two sites stores one blob."""
    path = tmp_path / "dedup.journal"
    journal = journal_with_one_site(path)
    from repro.core.surfacer import SiteSurfacingResult

    journal.record_site(
        "other.example.com",
        [sample_record(1), sample_record(3)],  # record 1 already journaled
        SiteSurfacingResult(host="other.example.com", domain="auto"),
    )
    blob_lines = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if json.loads(line)["kind"] == "blob"
    ]
    assert len(blob_lines) == 3  # records 1, 2, 3 -- record 1 not duplicated
    assert {entry["hash"] for entry in blob_lines} == {
        record_content_hash(sample_record(n)) for n in (1, 2, 3)
    }
    records, _ = SurfacingJournal(path).site_entry("other.example.com")
    assert [record.url for record in records] == [
        "http://host.example.com/r/1",
        "http://host.example.com/r/3",
    ]
