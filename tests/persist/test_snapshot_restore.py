"""Whole-service snapshot/restore: warm restarts with zero re-surfacing.

The tentpole claim: ``service.snapshot(path)`` followed by
``DeepWebService.restore(path)`` yields a service whose
``search``/``search_all``/``query()`` answers are byte-identical to the
original -- ids, order, scores -- while the regenerated web records
*zero* surfacing work (no crawling, no form probing, no URL fetches by
the surfacer).  Also pinned here: the report's ``storage`` section, the
query-log round-trip, and the serving-cache generation fix (a restored
frontend must never serve a pre-snapshot ranking as fresh).
"""

from __future__ import annotations

import json

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.perf.benchreport import normalized_index, normalized_results
from repro.persist import SnapshotError, SqliteBackend
from repro.search.querylog import Query, QueryLog
from repro.webspace.loadmeter import AGENT_SURFACER
from repro.webspace.sitegen import WebConfig, generate_web

pytestmark = pytest.mark.persist

WEB = WebConfig(total_deep_sites=3, surface_site_count=1, max_records=60, seed=3)
SURFACING = SurfacingConfig(max_urls_per_form=60)
QUERIES = ["toyota dealer", "price camry", "used honda", "city zipcode"]


def build_and_fill() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WEB)
        .surfacing(SURFACING)
        .serving(workers=2, cache_size=64)
        .create()
    )
    # Build the frontend before ingesting: its ingest listener stamps the
    # cache generation per document, which the snapshot must carry over.
    assert service.frontend.cache.generation == 0
    service.crawl(max_pages=100)
    service.surface()
    service.harvest_tables()
    service.query_log = QueryLog(
        queries=[
            Query(text="toyota dealer", kind="head", frequency=40, rank=1),
            Query(text="used honda", kind="tail", frequency=1, rank=2,
                  target_host="site.example.com"),
        ]
    )
    return service


def answers(service: DeepWebService) -> dict[str, list[tuple]]:
    out = {}
    for query in QUERIES:
        out[f"search:{query}"] = [
            (r.doc_id, r.url, r.score, r.source) for r in service.search(query, k=15)
        ]
        out[f"search_all:{query}"] = [
            (r.doc_id, r.url, r.score, r.source)
            for r in service.search_all(query, k=15)
        ]
        plan_result = service.query(query, k=10)
        out[f"query:{query}"] = [
            (r.doc_id, r.url, r.score, r.source) for r in plan_result.results
        ]
    return out


@pytest.fixture(scope="module")
def round_trip(tmp_path_factory):
    service = build_and_fill()
    expected = answers(service)
    # Serve through the frontend so the cache has stamped generations.
    service.frontend.serve("toyota dealer", k=10)
    path = service.snapshot(tmp_path_factory.mktemp("snap") / "snapshot.json")
    restored = DeepWebService.restore(path)
    return service, restored, expected, path


def test_restored_answers_are_byte_identical(round_trip):
    service, restored, expected, _ = round_trip
    assert answers(restored) == expected
    assert normalized_index(restored.engine) == normalized_index(service.engine)
    assert normalized_results(restored.results) == normalized_results(service.results)


def test_restore_does_zero_surfacing_work(round_trip):
    _, restored, _, _ = round_trip
    # Answering queries above touched the regenerated web not at all:
    # the planner's default plans never probe, and the harvest is
    # settled by the snapshot bookkeeping.
    assert restored.web.load_meter.total(agent=AGENT_SURFACER) == 0
    assert restored.web.load_meter.total() == 0


def test_restore_round_trips_bookkeeping(round_trip):
    service, restored, _, path = round_trip
    assert restored.crawl_stats == service.crawl_stats
    assert restored.corpus.tables == service.corpus.tables
    assert restored.corpus.form_schemas == service.corpus.form_schemas
    assert restored.corpus.form_values == service.corpus.form_values
    assert restored.corpus.stats == service.corpus.stats
    assert restored.query_log is not None
    assert restored.query_log.queries == service.query_log.queries
    assert restored._harvest_settled == service._harvest_settled
    assert restored._restored_from == path


def test_report_storage_section(round_trip):
    service, restored, _, path = round_trip
    section = service.report().storage
    assert section["backend"] == "memory"
    assert section["documents"] == len(service.store)
    assert section["by_source"] == dict(service.store.count_by_source())
    assert section["snapshot_path"] == str(path)
    assert section["snapshot_age_seconds"] >= 0.0
    assert "restored_from" not in section

    restored_section = restored.report().storage
    assert restored_section["backend"] == "memory"
    assert restored_section["documents"] == len(service.store)
    assert restored_section["restored_from"] == str(path)

    lines = restored.report().lines()
    storage_lines = [line for line in lines if line.startswith("storage:")]
    assert storage_lines == [
        f"storage: memory backend, {len(service.store)} documents "
        "(restored from snapshot)"
    ]


def test_restored_cache_generation_never_serves_stale_rankings(round_trip):
    """The fix pinned by this test: the restored cache starts one past
    the snapshotted generation, so a ranking carried across the restart
    stamped with any pre-snapshot generation can never come back fresh."""
    service, restored, _, _ = round_trip
    snapshot_generation = service.frontend.cache.generation
    assert snapshot_generation > 0  # ingests bumped it; the pin is meaningful
    cache = restored.frontend.cache
    assert cache.generation == snapshot_generation + 1
    # A pre-snapshot entry smuggled into the restored cache is stale on
    # arrival, for every generation the old process could have stamped.
    for stale_generation in (0, 1, snapshot_generation):
        cache.put("toyota dealer", 10, (), generation=stale_generation)
        assert cache.get("toyota dealer", 10) is None
    # Entries stamped by the restored process itself serve normally.
    cache.put("toyota dealer", 10, ())
    assert cache.get("toyota dealer", 10) == ()


def test_restore_into_reopened_sqlite_store(tmp_path):
    """Restoring against the reopened sqlite file dedups onto its ids."""
    store = SqliteBackend(tmp_path / "store.sqlite3")
    service = (
        DeepWebService.build().web(WEB).surfacing(SURFACING).store(store).create()
    )
    service.crawl(max_pages=100)
    service.surface()
    expected = [
        (r.doc_id, r.url, r.score) for r in service.search("toyota dealer", k=20)
    ]
    path = service.snapshot(tmp_path / "snapshot.json")
    service.store.close()

    restored = DeepWebService.restore(path, store=SqliteBackend(tmp_path / "store.sqlite3"))
    assert restored.store.kind == "sqlite"
    assert [
        (r.doc_id, r.url, r.score) for r in restored.search("toyota dealer", k=20)
    ] == expected
    assert restored.web.load_meter.total(agent=AGENT_SURFACER) == 0
    restored.store.close()


def test_snapshot_defaults_to_persist_dir(tmp_path):
    service = (
        DeepWebService.build()
        .web(WEB)
        .surfacing(SURFACING)
        .persist(tmp_path / "state")
        .create()
    )
    service.crawl(max_pages=50)
    written = service.snapshot()
    assert written == tmp_path / "state" / "snapshot.json"
    assert written.exists()
    service.store.close()


def test_snapshot_without_persist_dir_needs_a_path():
    service = DeepWebService.build().web(WEB).surfacing(SURFACING).create()
    with pytest.raises(ValueError, match="explicit path"):
        service.snapshot()


def test_restore_rejects_foreign_and_future_files(tmp_path):
    not_a_snapshot = tmp_path / "other.json"
    not_a_snapshot.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(SnapshotError, match="not a service snapshot"):
        DeepWebService.restore(not_a_snapshot)

    service = DeepWebService.build().web(WEB).surfacing(SURFACING).create()
    path = service.snapshot(tmp_path / "snap.json")
    payload = json.loads(path.read_text())
    payload["format"] = 99
    future = tmp_path / "future.json"
    future.write_text(json.dumps(payload))
    with pytest.raises(SnapshotError, match="format 99"):
        DeepWebService.restore(future)


def test_explicit_web_snapshot_requires_web_on_restore(tmp_path):
    web = generate_web(WEB)
    service = DeepWebService.build().web(web).surfacing(SURFACING).create()
    service.crawl(max_pages=50)
    path = service.snapshot(tmp_path / "snap.json")
    with pytest.raises(SnapshotError, match="pass web="):
        DeepWebService.restore(path)
    restored = DeepWebService.restore(path, web=generate_web(WEB))
    assert normalized_index(restored.engine) == normalized_index(service.engine)
