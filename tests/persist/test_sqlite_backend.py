"""SqliteBackend: protocol conformance, durability, and ranking identity.

The durable backend's contract is strict: every read answer -- ids,
rankings, bit-identical scores -- must match the in-memory default, both
while the file is live and after a reopen from disk alone.  The
adversarial interleaving half of this claim lives in
``tests/store/test_property_equivalence.py``; here we pin it on a real
surfaced corpus plus the file-lifecycle behaviors the interleavings
cannot see (reopen, commit batching, parameter pinning, corruption).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.perf.benchreport import normalized_index
from repro.persist import SqliteBackend, SqliteStoreError
from repro.store import IngestRecord, InMemoryBackend
from repro.webspace.sitegen import WebConfig

pytestmark = pytest.mark.persist

WEB = WebConfig(total_deep_sites=3, surface_site_count=1, max_records=60, seed=3)
SURFACING = SurfacingConfig(max_urls_per_form=60)


def make_record(n: int, tokens: list[str] | None = None) -> IngestRecord:
    return IngestRecord(
        url=f"http://durable.example.com/page/{n}",
        host="durable.example.com",
        title=f"page {n}",
        text=f"page {n} body",
        tokens=tokens if tokens is not None else ["alpha", "beta", f"page{n}"],
        source="surfaced",
        annotations={"n": str(n)},
    )


def build_service(store=None) -> DeepWebService:
    builder = DeepWebService.build().web(WEB).surfacing(SURFACING)
    if store is not None:
        builder = builder.store(store)
    return builder.create()


# -- protocol conformance ----------------------------------------------------


def test_protocol_surface(tmp_path):
    with SqliteBackend(tmp_path / "store.sqlite3") as backend:
        assert backend.kind == "sqlite"
        assert len(backend) == 0
        first = make_record(1)
        doc_id = backend.add(first)
        assert doc_id == 1
        assert backend.add(make_record(2)) == 2
        # URL-keyed dedup returns the existing id, stores nothing new.
        assert backend.add(first) == 1
        assert len(backend) == 2
        assert first.url in backend
        assert backend.doc_id_for_url(first.url) == 1
        assert backend.get(1).url == first.url
        assert backend.document_for_url(first.url).doc_id == 1
        assert [d.doc_id for d in backend.documents()] == [1, 2]
        assert [d.doc_id for d in backend.documents_for_host("durable.example.com")] == [1, 2]
        assert backend.count_by_source() == {"surfaced": 2}
        stats = backend.stats()
        assert stats.backend == "sqlite"
        assert stats.documents == 2
        assert stats.by_source == {"surfaced": 2}
        hits = backend.search(["alpha"], limit=10)
        assert [doc_id for doc_id, _ in hits] == [1, 2]


def test_search_identical_to_memory_on_surfaced_corpus(tmp_path):
    """Ids, order and scores match InMemoryBackend on a real corpus."""
    memory_service = build_service()
    sqlite_service = build_service(SqliteBackend(tmp_path / "corpus.sqlite3"))
    for service in (memory_service, sqlite_service):
        service.crawl(max_pages=100)
        service.surface()
    assert normalized_index(sqlite_service.engine) == normalized_index(
        memory_service.engine
    )
    for query in ["toyota dealer", "camry", "price", "zzz-missing"]:
        expected = [
            (r.doc_id, r.url, r.score, r.source)
            for r in memory_service.search(query, k=25)
        ]
        got = [
            (r.doc_id, r.url, r.score, r.source)
            for r in sqlite_service.search(query, k=25)
        ]
        assert got == expected, f"rankings diverged for {query!r}"
    sqlite_service.store.close()


# -- durability across reopen ------------------------------------------------


def test_reopen_reproduces_state_and_rankings(tmp_path):
    path = tmp_path / "reopen.sqlite3"
    service = build_service(SqliteBackend(path))
    service.crawl(max_pages=100)
    service.surface()
    before_index = normalized_index(service.engine)
    before_search = [
        (r.doc_id, r.score) for r in service.search("toyota price", k=50)
    ]
    service.store.close()

    reopened = SqliteBackend(path)
    assert normalized_index_of_backend(reopened) == before_index
    got = reopened.search("toyota price".split(), limit=50)
    assert [(doc_id, score) for doc_id, score in got] == before_search
    reopened.close()


def normalized_index_of_backend(backend) -> list[tuple]:
    return [
        (doc.doc_id, doc.url, doc.host, doc.title, doc.text, doc.source,
         tuple(sorted(doc.annotations.items())))
        for doc in backend.documents()
    ]


def test_export_records_round_trips_tokens_verbatim(tmp_path):
    tokens = ["zeta", "alpha", "alpha", "mid"]  # deliberately unsorted
    with SqliteBackend(tmp_path / "export.sqlite3") as backend:
        backend.add(make_record(1, tokens=tokens))
        exported = backend.export_records()
    assert len(exported) == 1
    assert exported[0].tokens == tokens
    assert exported[0].annotations == {"n": "1"}


# -- commit batching ---------------------------------------------------------


def test_commit_batching_and_flush(tmp_path):
    path = tmp_path / "batch.sqlite3"
    backend = SqliteBackend(path, commit_every=3)
    reader = sqlite3.connect(str(path))

    def committed_rows() -> int:
        return reader.execute("SELECT COUNT(*) FROM documents").fetchone()[0]

    backend.add(make_record(1))
    backend.add(make_record(2))
    assert committed_rows() == 0  # below the batch threshold, uncommitted
    backend.add(make_record(3))
    assert committed_rows() == 3  # batch boundary commits
    backend.add(make_record(4))
    assert committed_rows() == 3
    backend.flush()
    assert committed_rows() == 4
    backend.add(make_record(5))
    backend.close()  # close commits the tail
    assert committed_rows() == 5
    reader.close()


def test_commit_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        SqliteBackend(tmp_path / "bad.sqlite3", commit_every=0)


# -- pinned parameters and corruption ----------------------------------------


def test_reopen_with_different_bm25_parameters_is_refused(tmp_path):
    path = tmp_path / "params.sqlite3"
    with SqliteBackend(path, k1=1.5, b=0.75) as backend:
        backend.add(make_record(1))
    with pytest.raises(SqliteStoreError, match="incompatible store file"):
        SqliteBackend(path, k1=1.2, b=0.75)
    with pytest.raises(SqliteStoreError, match="incompatible store file"):
        SqliteBackend(path, k1=1.5, b=0.5)
    # The original parameters still open fine.
    SqliteBackend(path, k1=1.5, b=0.75).close()


def test_non_contiguous_doc_ids_are_refused(tmp_path):
    path = tmp_path / "holes.sqlite3"
    with SqliteBackend(path) as backend:
        backend.add(make_record(1))
        backend.add(make_record(2))
    raw = sqlite3.connect(str(path))
    with raw:
        raw.execute("DELETE FROM documents WHERE doc_id = 1")
    raw.close()
    with pytest.raises(SqliteStoreError, match="not contiguous"):
        SqliteBackend(path)


def test_backend_is_not_memory_subclass_in_kind_only(tmp_path):
    """The service report and storage section key off ``kind``."""
    with SqliteBackend(tmp_path / "kind.sqlite3") as backend:
        assert isinstance(backend, InMemoryBackend)
        assert backend.kind == "sqlite"
        assert InMemoryBackend().kind != backend.kind
