"""Regression: the staged pipeline reproduces the legacy ``Surfacer`` path.

Two identically-seeded webs are surfaced, one through the historical
``Surfacer(web, engine, config).surface_site(site)`` call shape and one
through ``SurfacingPipeline`` directly; every number the experiments
consume must match exactly."""

from __future__ import annotations

import pytest

from repro import (
    SearchEngine,
    Surfacer,
    SurfacingConfig,
    SurfacingPipeline,
    WebConfig,
    generate_web,
)

pytestmark = pytest.mark.smoke

WEB_CONFIG = WebConfig(total_deep_sites=4, surface_site_count=1, max_records=80, seed=3)
SURFACING_CONFIG = SurfacingConfig(seed=11, max_urls_per_form=200)


@pytest.fixture(scope="module")
def equivalent_runs():
    legacy_web = generate_web(WEB_CONFIG)
    staged_web = generate_web(WEB_CONFIG)
    legacy_engine = SearchEngine()
    staged_engine = SearchEngine()
    legacy = Surfacer(legacy_web, legacy_engine, SURFACING_CONFIG).surface_web()
    staged = SurfacingPipeline(staged_web, staged_engine, SURFACING_CONFIG).surface_web()
    return legacy, staged, legacy_engine, staged_engine


def test_site_results_are_identical(equivalent_runs):
    legacy, staged, _legacy_engine, _staged_engine = equivalent_runs
    assert len(legacy) == len(staged) > 0
    for legacy_result, staged_result in zip(legacy, staged):
        assert legacy_result.host == staged_result.host
        assert legacy_result.forms_found == staged_result.forms_found
        assert legacy_result.forms_surfaced == staged_result.forms_surfaced
        assert legacy_result.post_forms_skipped == staged_result.post_forms_skipped
        assert legacy_result.urls_generated == staged_result.urls_generated
        assert legacy_result.urls_indexed == staged_result.urls_indexed
        assert legacy_result.probes_issued == staged_result.probes_issued
        assert legacy_result.analysis_load == staged_result.analysis_load
        assert legacy_result.records_covered == staged_result.records_covered
        assert legacy_result.record_sets == staged_result.record_sets


def test_form_results_are_identical(equivalent_runs):
    legacy, staged, _legacy_engine, _staged_engine = equivalent_runs
    for legacy_result, staged_result in zip(legacy, staged):
        for legacy_form, staged_form in zip(
            legacy_result.form_results, staged_result.form_results
        ):
            assert legacy_form.form_identity == staged_form.form_identity
            assert legacy_form.skipped == staged_form.skipped
            assert legacy_form.skip_reason == staged_form.skip_reason
            assert legacy_form.typed_inputs == staged_form.typed_inputs
            assert legacy_form.range_pairs == staged_form.range_pairs
            assert legacy_form.templates_selected == staged_form.templates_selected
            assert legacy_form.urls_kept == staged_form.urls_kept
            assert legacy_form.urls_indexed == staged_form.urls_indexed


def test_coverage_reports_are_identical(equivalent_runs):
    legacy, staged, _legacy_engine, _staged_engine = equivalent_runs
    for legacy_result, staged_result in zip(legacy, staged):
        assert (legacy_result.coverage is None) == (staged_result.coverage is None)
        if legacy_result.coverage is not None:
            assert legacy_result.coverage.true_coverage == staged_result.coverage.true_coverage
            assert (
                legacy_result.coverage.estimated_coverage
                == staged_result.coverage.estimated_coverage
            )


def test_indexes_are_identical(equivalent_runs):
    _legacy, _staged, legacy_engine, staged_engine = equivalent_runs
    assert len(legacy_engine) == len(staged_engine)
    assert legacy_engine.count_by_source() == staged_engine.count_by_source()
    legacy_urls = sorted(document.url for document in legacy_engine.documents())
    staged_urls = sorted(document.url for document in staged_engine.documents())
    assert legacy_urls == staged_urls
