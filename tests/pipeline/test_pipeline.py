"""Tests for the SurfacingPipeline composer: stage management, observers,
progress events and per-site timing."""

from __future__ import annotations

import io

import pytest

from repro import MetricsObserver, ProgressObserver, SurfacingConfig, SurfacingPipeline
from repro.pipeline import SCOPE_FORM, UnknownStageError
from repro.pipeline.observer import PipelineObserver
from repro.search.engine import SOURCE_SURFACED, SearchEngine

pytestmark = pytest.mark.smoke


class RecordingObserver(PipelineObserver):
    """Logs every event as a plain tuple."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_site_start(self, site, index, total):
        self.events.append(("site-start", site.host, index, total))

    def on_site_end(self, site, result, index, total):
        self.events.append(("site-end", site.host, index, total, result.urls_indexed))

    def on_stage_start(self, stage_name, ctx):
        self.events.append(("stage-start", stage_name))

    def on_stage_end(self, stage_name, ctx, elapsed):
        self.events.append(("stage-end", stage_name))


class TallyStage:
    """A custom form-scoped stage that counts its executions."""

    name = "tally"
    scope = SCOPE_FORM

    def __init__(self) -> None:
        self.runs = 0

    def run(self, ctx):
        self.runs += 1
        return ctx


class TestStageManagement:
    def test_without_stage_ablates_indexing(self, car_web, car_site):
        pipeline = SurfacingPipeline(car_web, SearchEngine(), SurfacingConfig())
        pipeline.without_stage("index-pages")
        result = pipeline.surface_site(car_site)
        assert result.forms_surfaced == 1
        assert result.form_results[0].urls_kept > 0
        assert result.urls_indexed == 0
        assert pipeline.engine.documents(source=SOURCE_SURFACED) == []

    def test_replace_stage_swaps_implementation(self, car_web, car_site):
        pipeline = SurfacingPipeline(car_web, SearchEngine(), SurfacingConfig())
        tally = TallyStage()
        pipeline.replace_stage("index-pages", tally)
        pipeline.surface_site(car_site)
        assert tally.runs == 1
        assert "index-pages" not in pipeline.stage_names

    def test_insert_stage_positions(self, car_web):
        pipeline = SurfacingPipeline(car_web)
        pipeline.insert_stage(TallyStage(), after="generate-urls")
        names = pipeline.stage_names
        assert names.index("tally") == names.index("generate-urls") + 1

        before = TallyStage()
        before.name = "tally-before"
        pipeline.insert_stage(before, before="classify-inputs")
        names = pipeline.stage_names
        assert names.index("tally-before") == names.index("classify-inputs") - 1

    def test_unknown_stage_raises(self, car_web):
        pipeline = SurfacingPipeline(car_web)
        with pytest.raises(UnknownStageError):
            pipeline.without_stage("no-such-stage")
        with pytest.raises(UnknownStageError):
            pipeline.get_stage("no-such-stage")

    def test_before_and_after_are_exclusive(self, car_web):
        pipeline = SurfacingPipeline(car_web)
        with pytest.raises(ValueError):
            pipeline.insert_stage(TallyStage(), before="index-pages", after="generate-urls")


class TestObserversAndProgress:
    def test_event_order_for_one_site(self, car_web, car_site):
        observer = RecordingObserver()
        pipeline = SurfacingPipeline(car_web, observers=[observer])
        pipeline.surface_many([car_site])
        kinds_and_names = [event[:2] for event in observer.events]
        assert kinds_and_names[0] == ("site-start", car_site.host)
        assert kinds_and_names[1] == ("stage-start", "discover-forms")
        assert kinds_and_names[-1] == ("site-end", car_site.host)
        # Form-scoped stages ran in paper order between discovery and site end.
        stage_starts = [name for kind, name in kinds_and_names if kind == "stage-start"]
        assert stage_starts == [
            "discover-forms",
            "classify-inputs",
            "detect-correlations",
            "candidate-values",
            "select-templates",
            "generate-urls",
            "index-pages",
        ]

    def test_surface_many_reports_global_indices(self, small_web):
        observer = RecordingObserver()
        pipeline = SurfacingPipeline(small_web, observers=[observer])
        sites = small_web.deep_sites()[:3]
        pipeline.surface_many(sites, start_index=5, total=11)
        starts = [event for event in observer.events if event[0] == "site-start"]
        assert [(index, total) for _kind, _host, index, total in starts] == [
            (5, 11),
            (6, 11),
            (7, 11),
        ]

    def test_progress_observer_prints_deterministic_lines(self, car_web, car_site):
        stream = io.StringIO()
        pipeline = SurfacingPipeline(car_web, observers=[ProgressObserver(stream)])
        result = pipeline.surface_many([car_site])[0]
        lines = stream.getvalue().splitlines()
        assert lines[0] == f"[1/1] surfacing {car_site.host} ..."
        assert lines[1] == (
            f"[1/1] surfaced {car_site.host}: forms=1/1 "
            f"urls={result.urls_indexed} records={result.records_covered}"
        )

    def test_metrics_observer_counts_stages_and_sites(self, car_web, car_site):
        metrics = MetricsObserver()
        pipeline = SurfacingPipeline(car_web, observers=[metrics])
        result = pipeline.surface_many([car_site])[0]
        assert metrics.sites_started == metrics.sites_finished == 1
        assert metrics.stage_runs["discover-forms"] == 1
        assert metrics.stage_runs["index-pages"] == 1
        assert metrics.urls_indexed == result.urls_indexed
        assert metrics.as_dict()["stage_runs"]["generate-urls"] == 1

    def test_per_site_timing_is_recorded(self, car_web, car_site):
        pipeline = SurfacingPipeline(car_web)
        result = pipeline.surface_site(car_site)
        assert result.elapsed_seconds > 0.0
