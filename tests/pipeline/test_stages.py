"""Stage-level unit tests for the staged surfacing pipeline."""

from __future__ import annotations

import pytest

from repro import SurfacingConfig
from repro.pipeline import (
    CandidateValueStage,
    CorrelationDetectionStage,
    FormDiscoveryStage,
    IndexingStage,
    InputClassificationStage,
    PipelineContext,
    Stage,
    TemplateSelectionStage,
    UrlGenerationStage,
    default_stages,
)
from repro.search.engine import SOURCE_SURFACED, SearchEngine
from repro.webspace.web import Web

pytestmark = pytest.mark.smoke

#: Form-scoped stages in paper order, for running a context "up to" a stage.
FORM_STAGE_ORDER = [
    InputClassificationStage,
    CorrelationDetectionStage,
    CandidateValueStage,
    TemplateSelectionStage,
    UrlGenerationStage,
    IndexingStage,
]


def run_through(ctx: PipelineContext, upto: type) -> PipelineContext:
    """Run the form stages in order until (and including) ``upto``."""
    for stage_cls in FORM_STAGE_ORDER:
        ctx = stage_cls().run(ctx)
        if stage_cls is upto:
            break
    return ctx


@pytest.fixture
def site_ctx(car_web, car_site):
    ctx = PipelineContext.create(
        car_web, SearchEngine(), SurfacingConfig(max_urls_per_form=200)
    )
    return FormDiscoveryStage().run(ctx.for_site(car_site))


@pytest.fixture
def form_ctx(site_ctx):
    assert site_ctx.forms, "discovery must find the car form"
    return site_ctx.for_form(site_ctx.forms[0])


class TestFormDiscoveryStage:
    def test_discovers_forms_and_homepage(self, site_ctx, car_site):
        assert site_ctx.homepage_ok
        assert site_ctx.homepage_html
        assert len(site_ctx.forms) == 1
        assert site_ctx.site_result.forms_found == 1
        assert site_ctx.forms[0].host == car_site.host

    def test_marks_unreachable_homepage(self, car_site):
        empty_web = Web()  # the site is not registered, so the fetch fails
        ctx = PipelineContext.create(empty_web, SearchEngine(), SurfacingConfig())
        ctx = FormDiscoveryStage().run(ctx.for_site(car_site))
        assert not ctx.homepage_ok
        assert ctx.forms == []


class TestInputClassificationStage:
    def test_predicts_types_for_text_inputs(self, form_ctx):
        ctx = run_through(form_ctx, InputClassificationStage)
        assert ctx.predictions
        assert "zipcode" in set(ctx.form_result.typed_inputs.values())


class TestCorrelationDetectionStage:
    def test_detects_price_range_pair(self, form_ctx):
        ctx = run_through(form_ctx, CorrelationDetectionStage)
        assert {pair.property_name for pair in ctx.form_result.range_pairs} >= {"price"}

    def test_config_can_disable_detection(self, site_ctx):
        site_ctx.config = SurfacingConfig(range_aware=False, db_selection_aware=False)
        ctx = run_through(site_ctx.for_form(site_ctx.forms[0]), CorrelationDetectionStage)
        assert ctx.form_result.range_pairs == []
        assert ctx.form_result.database_selection is None


class TestCandidateValueStage:
    def test_assembles_value_sets(self, form_ctx):
        ctx = run_through(form_ctx, CandidateValueStage)
        assert ctx.value_sets
        assert all(values for values in ctx.value_sets.values())
        # The max input of a detected range pair is handled by range-aware
        # URL generation, never enumerated independently.
        for pair in ctx.form_result.range_pairs:
            assert pair.max_input not in ctx.value_sets

    def test_respects_value_budget(self, form_ctx):
        budget = form_ctx.config.max_values_per_input
        ctx = run_through(form_ctx, CandidateValueStage)
        assert all(len(values) <= budget for values in ctx.value_sets.values())


class TestTemplateSelectionStage:
    def test_selects_bounded_informative_templates(self, form_ctx):
        ctx = run_through(form_ctx, TemplateSelectionStage)
        templates = ctx.form_result.templates_selected
        assert templates
        assert len(templates) <= ctx.config.max_templates_per_form
        assert all(
            len(template.binding_inputs) <= ctx.config.max_template_dimensions
            for template in templates
        )


class TestUrlGenerationStage:
    def test_generates_and_filters_urls(self, form_ctx):
        ctx = run_through(form_ctx, UrlGenerationStage)
        assert ctx.form_result.urls_generated > 0
        assert 0 < ctx.form_result.urls_kept <= ctx.form_result.urls_generated
        assert ctx.form_result.generation_stats.kept == ctx.form_result.urls_kept
        assert len(ctx.kept) == ctx.form_result.urls_kept


class TestIndexingStage:
    def test_indexes_kept_pages(self, form_ctx):
        ctx = run_through(form_ctx, IndexingStage)
        assert ctx.form_result.urls_indexed > 0
        surfaced = ctx.engine.documents(source=SOURCE_SURFACED)
        assert len(surfaced) == ctx.form_result.urls_indexed
        assert len(ctx.form_result.record_sets) == ctx.form_result.urls_kept

    def test_index_pages_flag_disables_indexing(self, site_ctx):
        site_ctx.config = SurfacingConfig(index_pages=False, max_urls_per_form=200)
        ctx = run_through(site_ctx.for_form(site_ctx.forms[0]), IndexingStage)
        assert ctx.form_result.urls_indexed == 0
        assert ctx.engine.documents(source=SOURCE_SURFACED) == []
        # Record bookkeeping still happens, so coverage stays measurable.
        assert ctx.form_result.record_sets


def test_default_stages_cover_the_paper_order():
    names = [stage.name for stage in default_stages()]
    assert names == [
        "discover-forms",
        "classify-inputs",
        "detect-correlations",
        "candidate-values",
        "select-templates",
        "generate-urls",
        "index-pages",
    ]
    assert all(isinstance(stage, Stage) for stage in default_stages())
