"""Tests for :class:`BlendedRanker`: normalization, dedup, floors, ties."""

from __future__ import annotations

from repro.query.executor import BlendedRanker
from repro.search.engine import SearchResult


def result(doc_id: int, score: float, source: str = "surfaced", url: str | None = None):
    return SearchResult(
        doc_id=doc_id,
        url=url or f"http://x.example.com/{doc_id}",
        host="x.example.com",
        title=f"doc {doc_id}",
        score=score,
        source=source,
    )


class TestSingleRoutePassthrough:
    def test_single_contribution_keeps_raw_scores_and_order(self):
        results = [result(1, 7.5), result(2, 3.25), result(9, 3.25)]
        hits = BlendedRanker().blend([("indexed", results, 0)], k=2)
        assert [h.result for h in hits] == results  # untouched, not truncated
        assert all(h.route == "indexed" for h in hits)


class TestMultiRouteBlend:
    def test_scores_normalize_per_route(self):
        a = [result(1, 10.0), result(2, 5.0)]
        b = [result(-1, 0.5, source="live-vertical", url="live://1")]
        hits = BlendedRanker().blend([("indexed", a, 0), ("live", b, 0)], k=3)
        scores = {h.result.doc_id: h.result.score for h in hits}
        assert scores[1] == 1.0  # each route's best -> 1.0
        assert scores[-1] == 1.0
        assert scores[2] == 0.5

    def test_ties_break_by_doc_id(self):
        a = [result(5, 4.0), result(2, 4.0)]
        b = [result(7, 2.0)]
        hits = BlendedRanker().blend([("indexed", a, 0), ("tables", b, 0)], k=3)
        assert [h.result.doc_id for h in hits][:2] == [2, 5]

    def test_duplicate_documents_keep_one_instance(self):
        shared = result(3, 8.0, source="webtable")
        a = [result(1, 9.0), shared]
        b = [result(3, 1.0, source="webtable")]  # same doc via the tables route
        hits = BlendedRanker().blend([("indexed", a, 0), ("tables", b, 0)], k=5)
        assert [h.result.doc_id for h in hits].count(3) == 1

    def test_live_hit_dedups_against_store_document_by_url(self):
        # A live probe returning a page the store also holds must not
        # produce two entries: URL is the shared identity.
        url = "http://cars.example.com/detail?id=9"
        a = [result(4, 6.0, url=url), result(5, 3.0)]
        b = [result(-1, 1.0, source="live-vertical", url=url)]
        hits = BlendedRanker().blend([("indexed", a, 0), ("live", b, 0)], k=5)
        assert [h.result.url for h in hits].count(url) == 1

    def test_blend_is_deterministic(self):
        a = [result(1, 3.0), result(4, 2.0)]
        b = [result(2, 5.0), result(6, 1.0)]
        ranker = BlendedRanker()
        first = ranker.blend([("x", a, 0), ("y", b, 0)], k=3)
        second = ranker.blend([("x", a, 0), ("y", b, 0)], k=3)
        assert first == second


class TestFloors:
    def test_route_floor_pulls_hits_into_the_head(self):
        strong = [result(i, 100.0 - i) for i in range(1, 6)]
        weak = [result(100 + i, 0.01 * (5 - i), source="webtable") for i in range(3)]
        hits = BlendedRanker().blend([("indexed", strong, 0), ("tables", weak, 2)], k=4)
        from_tables = [h for h in hits if h.route == "tables"]
        assert len(from_tables) == 2  # floor honored despite weak scores

    def test_floor_never_pads_beyond_what_a_route_produced(self):
        strong = [result(i, 50.0 - i) for i in range(1, 5)]
        weak = [result(200, 0.01, source="webtable")]
        hits = BlendedRanker().blend([("indexed", strong, 0), ("tables", weak, 3)], k=3)
        assert len([h for h in hits if h.route == "tables"]) == 1

    def test_final_list_stays_score_ordered(self):
        strong = [result(i, 10.0 - i) for i in range(1, 8)]
        weak = [result(300 + i, 1.0 - 0.1 * i, source="webtable") for i in range(4)]
        hits = BlendedRanker().blend([("indexed", strong, 0), ("tables", weak, 2)], k=5)
        keys = [(-h.result.score, h.result.doc_id) for h in hits]
        assert keys == sorted(keys)
