"""Smoke coverage for ``examples/federated_search.py``."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "examples" / "federated_search.py"


def load_example():
    spec = importlib.util.spec_from_file_location("federated_search", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_federated_search_example_runs(capsys):
    example = load_example()
    exit_code = example.main(["--sites", "2", "--seed", "41", "--live-budget", "3"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "search_all(" in out
    assert "routes: indexed" in out
    assert "fingerprint: plan:" in out
    assert "query planning:" in out
