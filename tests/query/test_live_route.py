"""Live-route guarantees: fetch budgets hold and probes are never stale-served.

The acceptance pin: :class:`LiveVerticalRoute` respects its per-plan
``Web.fetch`` budget -- asserted via the :class:`LoadMeter`, which
records every query-time fetch under the ``virtual`` agent -- and its
results never come from a cache entry (every serve runs a fresh probe).
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.query.plan import ROUTE_LIVE_VERTICAL, LiveVerticalRoute, SOURCE_LIVE_VERTICAL
from repro.serve.frontend import QueryFrontend
from repro.webspace.loadmeter import AGENT_VIRTUAL
from repro.webspace.sitegen import WebConfig


@pytest.fixture(scope="module")
def service() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=4, surface_site_count=1, max_records=60, seed=31))
        .surfacing(SurfacingConfig(max_urls_per_form=40))
        .create()
    )
    service.crawl(max_pages=80)
    service.surface()
    service.vertical  # build the routing table up front (metered separately)
    return service


def live_plan(service, budget: int):
    """A plan whose router-selected live route probes under ``budget``."""
    # Pick a query the router will route: the first source's domain words.
    source = service.vertical.sources()[0]
    query = f"{source.mapping.domain.replace('_', ' ')} records"
    plan = service.plan(query, k=10, live=True, live_fetch_budget=budget)
    if ROUTE_LIVE_VERTICAL not in plan.route_names:
        pytest.skip("router did not route the probe query in this world")
    return plan


class TestFetchBudget:
    @pytest.mark.parametrize("budget", [1, 2, 5])
    def test_live_route_spends_at_most_its_budget(self, service, budget):
        plan = live_plan(service, budget)
        before = service.web.load_meter.total(agent=AGENT_VIRTUAL)
        outcome = service.execute(plan)
        spent = service.web.load_meter.total(agent=AGENT_VIRTUAL) - before
        assert spent <= budget, f"live route exceeded its budget ({spent} > {budget})"
        assert outcome.live_fetches_spent == spent  # provenance tells the truth

    def test_probe_seam_enforces_budget_mid_pagination(self, service):
        vertical = service.vertical
        hosts = [entry.site.host for entry in vertical.sources()]
        before = service.web.load_meter.total(agent=AGENT_VIRTUAL)
        answer = vertical.probe(hosts, query="records search listings", fetch_budget=1)
        spent = service.web.load_meter.total(agent=AGENT_VIRTUAL) - before
        assert spent <= 1
        assert answer.fetches_issued == spent

    def test_unbudgeted_probe_still_bounded_by_page_limit(self, service):
        vertical = service.vertical
        hosts = [entry.site.host for entry in vertical.sources()][:1]
        before = service.web.load_meter.total(agent=AGENT_VIRTUAL)
        vertical.probe(hosts, query="records search listings", fetch_budget=None)
        spent = service.web.load_meter.total(agent=AGENT_VIRTUAL) - before
        assert spent <= vertical.max_pages_per_source


class TestLiveNeverCached:
    def test_live_plans_are_uncacheable(self, service):
        plan = live_plan(service, budget=3)
        assert not plan.cacheable

    def test_every_serve_runs_a_fresh_probe(self, service):
        plan = live_plan(service, budget=3)
        with QueryFrontend(
            service.engine, workers=1, cache_size=512, executor=service.executor
        ) as frontend:
            entries_before = len(frontend.cache)
            before = service.web.load_meter.total(agent=AGENT_VIRTUAL)
            first = frontend.serve_plan(plan)
            mid = service.web.load_meter.total(agent=AGENT_VIRTUAL)
            second = frontend.serve_plan(plan)
            after = service.web.load_meter.total(agent=AGENT_VIRTUAL)
            assert mid > before, "first serve must probe"
            assert after > mid, "second serve must probe again, never cache-hit"
            assert not first.cached and not second.cached
            assert len(frontend.cache) == entries_before, "no cache entry for live plans"
            # Deterministic world: the fresh probe reproduces the answer.
            assert second.results == first.results

    def test_live_hits_carry_live_provenance(self, service):
        plan = live_plan(service, budget=5)
        outcome = service.execute(plan)
        live_hits = [hit for hit in outcome.hits if hit.route == ROUTE_LIVE_VERTICAL]
        for hit in live_hits:
            assert hit.result.source == SOURCE_LIVE_VERTICAL
            assert hit.result.doc_id < 0  # minted, not a store document
        live_outcomes = [o for o in outcome.routes if o.route == ROUTE_LIVE_VERTICAL]
        assert live_outcomes and not live_outcomes[0].skipped

    def test_time_budget_skips_the_live_route(self, service):
        source = service.vertical.sources()[0]
        query = f"{source.mapping.domain.replace('_', ' ')} records"
        base = service.plan(query, k=10, live=True, live_fetch_budget=3)
        if ROUTE_LIVE_VERTICAL not in base.route_names:
            pytest.skip("router did not route the probe query in this world")
        # A zero wall-clock budget is always exceeded by the indexed route.
        routes = tuple(
            LiveVerticalRoute(
                hosts=route.hosts,
                fetch_budget=route.fetch_budget,
                max_results=route.max_results,
                time_budget_seconds=0.0,
            )
            if isinstance(route, LiveVerticalRoute)
            else route
            for route in base.routes
        )
        from dataclasses import replace

        plan = replace(base, routes=routes)
        before = service.web.load_meter.total(agent=AGENT_VIRTUAL)
        outcome = service.execute(plan)
        assert service.web.load_meter.total(agent=AGENT_VIRTUAL) == before
        skipped = [o for o in outcome.routes if o.route == ROUTE_LIVE_VERTICAL]
        assert skipped and skipped[0].skipped
        assert ROUTE_LIVE_VERTICAL not in outcome.routes_taken()
