"""Tests for query parsing (keywords vs ``field:value`` filters)."""

from __future__ import annotations

from repro.query.parse import parse_query


class TestKeywordParsing:
    def test_plain_keywords(self):
        parsed = parse_query("used toyota camry")
        assert parsed.keywords == ("used", "toyota", "camry")
        assert parsed.filters == ()
        assert not parsed.is_structured
        assert not parsed.is_empty

    def test_case_and_punctuation_normalize(self):
        parsed = parse_query("Used TOYOTA, Camry!")
        assert parsed.keywords == ("used", "toyota", "camry")

    def test_original_text_is_kept(self):
        assert parse_query("Used Toyota").text == "Used Toyota"


class TestFilterParsing:
    def test_single_filter(self):
        parsed = parse_query("make:Toyota")
        assert parsed.filters == (("make", "Toyota"),)
        assert parsed.keywords == ()
        assert parsed.is_structured

    def test_mixed_filters_and_keywords(self):
        parsed = parse_query("make:Toyota color:red cheap")
        assert parsed.filters == (("make", "Toyota"), ("color", "red"))
        assert parsed.keywords == ("cheap",)

    def test_attribute_names_are_normalized(self):
        assert parse_query("Body-Style:sedan").filters == (("body_style", "sedan"),)

    def test_filters_dict_last_wins(self):
        parsed = parse_query("make:Toyota make:Honda")
        assert parsed.filters_dict() == {"make": "Honda"}

    def test_degenerate_colons_fall_back_to_keywords(self):
        # Empty side(s) of the colon cannot form a filter.
        assert parse_query(":red").filters == ()
        assert parse_query("make:").filters == ()
        assert parse_query("a:b:c").filters == ()  # two colons: not a filter
        assert "red" in parse_query(":red").keywords


class TestEmptyQueries:
    def test_empty_and_whitespace_are_empty(self):
        for text in ("", "   ", "\t\n", None):
            parsed = parse_query(text)  # type: ignore[arg-type]
            assert parsed.is_empty
            assert parsed.keywords == () and parsed.filters == ()

    def test_punctuation_only_is_empty(self):
        assert parse_query("::: --- !!!").is_empty

    def test_keyword_text_roundtrip(self):
        assert parse_query("used  Toyota").keyword_text() == "used toyota"
        assert parse_query("").keyword_text() == ""
