"""The PR's acceptance pins: planner reads are byte-identical.

* an indexed-only :class:`QueryPlan` returns byte-identical results
  (ids, scores, order) to the pre-refactor ``search_all`` algorithm,
  replicated inline below, at every ``min_per_source`` parity;
* frontend-served plans are byte-identical to direct executor runs,
  including after a mid-workload ingest invalidates the plan cache.
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.serve.frontend import QueryFrontend
from repro.serve.loadgen import WorkloadGenerator
from repro.store.records import IngestRecord
from repro.util.text import tokenize
from repro.webspace.sitegen import WebConfig


@pytest.fixture(scope="module")
def service() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=3, surface_site_count=2, max_records=50, seed=23))
        .surfacing(SurfacingConfig(max_urls_per_form=50))
        .create()
    )
    service.crawl(max_pages=120)
    service.surface()
    return service


def legacy_search_all(service, query: str, k: int = 20, min_per_source: int = 3):
    """The pre-planner ``search_all`` read path, verbatim."""
    service.harvest_tables()
    if k <= 0:
        return []
    if min_per_source <= 0:
        return service.engine.search(query, k=k)
    full = service.engine.search(query, k=max(k, len(service.engine)))
    top = full[:k]
    counts: dict[str, int] = {}
    for result in top:
        counts[result.source] = counts.get(result.source, 0) + 1
    extras = []
    for result in full[k:]:
        if counts.get(result.source, 0) < min_per_source:
            counts[result.source] = counts.get(result.source, 0) + 1
            extras.append(result)
    if extras:
        top = sorted(top + extras, key=lambda r: (-r.score, r.doc_id))
    return top


def sample_queries(service, limit: int = 40) -> list[str]:
    """Deterministic query texts drawn from the corpus itself."""
    queries = []
    for doc in service.engine.documents():
        tokens = tokenize(doc.text, drop_stopwords=True)[:3]
        if tokens:
            queries.append(" ".join(tokens))
        if len(queries) >= limit:
            break
    assert queries
    return queries


class TestIndexedPlanEquivalence:
    @pytest.mark.parametrize("min_per_source", [0, 1, 3, 7])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_search_all_is_byte_identical_to_the_legacy_path(
        self, service, k, min_per_source
    ):
        for query in sample_queries(service):
            expected = legacy_search_all(service, query, k=k, min_per_source=min_per_source)
            got = service.search_all(query, k=k, min_per_source=min_per_source)
            assert got == expected  # ids, scores, order -- the full tuples

    def test_direct_executor_matches_search_all(self, service):
        for query in sample_queries(service, limit=15):
            plan = service.plan(query, k=10, min_per_source=2, include_webtables=False)
            assert service.execute(plan).results == service.search_all(
                query, k=10, min_per_source=2
            )

    def test_indexed_hits_carry_route_provenance(self, service):
        plan = service.plan(sample_queries(service, 1)[0], k=5, include_webtables=False)
        outcome = service.execute(plan)
        assert outcome.hits, "corpus-derived query must match"
        assert all(hit.route == "indexed" for hit in outcome.hits)
        assert outcome.routes_taken() == ("indexed",)


class TestFrontendPlanEquivalence:
    def _plans(self, service, count: int, seed: str):
        stream = WorkloadGenerator(service.web, seed=seed).mixed_stream(count, k=10)
        return [service.plan(query.text, k=query.k, min_per_source=2) for query in stream]

    def test_served_plans_match_direct_executor_runs(self, service):
        plans = self._plans(service, 150, seed="plan-equiv")
        direct = [service.execute(plan).results for plan in plans]
        with QueryFrontend(
            service.engine, workers=1, cache_size=512, executor=service.executor
        ) as frontend:
            served = [frontend.serve_plan(plan).results for plan in plans]
            assert served == direct
            assert frontend.stats().plans_served == len(plans)
            assert frontend.cache.hits > 0, "repeated plans must hit the fingerprint cache"

    def test_mid_workload_ingest_invalidates_served_plans(self, service):
        plans = self._plans(service, 80, seed="plan-invalidate")
        half = len(plans) // 2
        with QueryFrontend(
            service.engine, workers=1, cache_size=512, executor=service.executor
        ) as frontend:
            first_direct = [service.execute(plan).results for plan in plans[:half]]
            assert [frontend.serve_plan(p).results for p in plans[:half]] == first_direct

            text = "midworkload planner listing city bedrooms special"
            service.engine.ingest_records(
                [
                    IngestRecord(
                        url="http://ingest.planner.example.com/1",
                        host="ingest.planner.example.com",
                        title="planner midworkload",
                        text=text,
                        tokens=tokenize(text),
                        source="surfaced",
                    )
                ]
            )

            second_direct = [service.execute(plan).results for plan in plans[half:]]
            assert [frontend.serve_plan(p).results for p in plans[half:]] == second_direct

    def test_cached_plan_serves_identical_hits_with_provenance(self, service):
        plan = service.plan(sample_queries(service, 1)[0], k=8, min_per_source=2)
        with QueryFrontend(
            service.engine, workers=1, cache_size=64, executor=service.executor
        ) as frontend:
            cold = frontend.serve_plan(plan)
            warm = frontend.serve_plan(plan)
            assert not cold.cached and warm.cached
            assert warm.hits == cold.hits  # provenance survives the cache
            assert warm.results == cold.results
