"""Tests for :class:`QueryPlanner`: plan shapes, signals and fingerprints."""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.query.plan import (
    ROUTE_INDEXED,
    ROUTE_LIVE_VERTICAL,
    ROUTE_WEBTABLES,
    IndexedRoute,
    LiveVerticalRoute,
)
from repro.query.planner import QueryPlanner
from repro.search.engine import SearchEngine
from repro.webspace.sitegen import WebConfig


@pytest.fixture(scope="module")
def service() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=3, surface_site_count=1, max_records=50, seed=17))
        .surfacing(SurfacingConfig(max_urls_per_form=50))
        .create()
    )
    service.crawl(max_pages=80)
    service.surface()
    service.harvest_tables()  # populate the webtables signals
    return service


class TestPlanShapes:
    def test_keyword_query_plans_indexed_only(self, service):
        plan = service.plan("used toyota camry")
        assert plan.route_names == (ROUTE_INDEXED,)
        assert plan.cacheable

    def test_structured_query_adds_webtables_route(self, service):
        plan = service.plan("make:toyota color:red")
        assert plan.route_names == (ROUTE_INDEXED, ROUTE_WEBTABLES)

    def test_include_webtables_false_forces_indexed_only(self, service):
        plan = service.plan("make:toyota", include_webtables=False)
        assert plan.route_names == (ROUTE_INDEXED,)

    def test_table_lookup_keywords_unlock_webtables(self, service):
        # Every keyword is an attribute known to the harvested corpus.
        plan = service.plan("city bedrooms")
        assert ROUTE_WEBTABLES in plan.route_names

    def test_live_plan_consults_the_router(self, service):
        plan = service.plan("software engineer jobs", live=True)
        assert plan.route_names == (ROUTE_INDEXED, ROUTE_LIVE_VERTICAL)
        live = plan.routes[-1]
        assert live.hosts, "router must select at least one plausible host"
        assert not plan.cacheable

    def test_live_plan_without_plausible_source_stays_offline(self, service):
        plan = service.plan("quantum chromodynamics lecture notes", live=True)
        assert ROUTE_LIVE_VERTICAL not in plan.route_names
        assert plan.cacheable

    def test_min_per_source_reaches_the_indexed_route(self, service):
        plan = service.plan("toyota", min_per_source=4)
        indexed = plan.routes[0]
        assert isinstance(indexed, IndexedRoute)
        assert indexed.min_per_source == 4


class TestEmptyPlans:
    def test_empty_and_whitespace_queries_plan_empty(self, service):
        for text in ("", "   ", "\n"):
            plan = service.plan(text)
            assert plan.is_empty
            assert service.execute(plan).results == []

    def test_non_positive_k_plans_empty(self, service):
        assert service.plan("toyota", k=0).is_empty
        assert service.plan("toyota", k=-3).is_empty


class TestFingerprints:
    def test_fingerprint_is_stable(self, service):
        one = service.plan("make:toyota cheap", k=12)
        two = service.plan("make:toyota cheap", k=12)
        assert one.fingerprint() == two.fingerprint()

    def test_fingerprint_normalizes_lexical_noise(self, service):
        assert (
            service.plan("Used  TOYOTA", include_webtables=False).fingerprint()
            == service.plan("used toyota", include_webtables=False).fingerprint()
        )

    def test_fingerprint_distinguishes_k_and_routes_and_filters(self, service):
        base = service.plan("make:toyota", k=10)
        assert base.fingerprint() != service.plan("make:toyota", k=11).fingerprint()
        assert (
            base.fingerprint()
            != service.plan("make:toyota", k=10, include_webtables=False).fingerprint()
        )
        assert base.fingerprint() != service.plan("make:honda", k=10).fingerprint()

    def test_live_budget_is_part_of_the_fingerprint(self, service):
        one = service.plan("software engineer jobs", live=True, live_fetch_budget=4)
        two = service.plan("software engineer jobs", live=True, live_fetch_budget=9)
        assert one.fingerprint() != two.fingerprint()


class TestPlannerValidation:
    def test_constructor_rejects_bad_limits(self):
        engine = SearchEngine()
        with pytest.raises(ValueError):
            QueryPlanner(engine, max_live_sources=0)
        with pytest.raises(ValueError):
            QueryPlanner(engine, default_live_budget=0)

    def test_planner_without_router_never_plans_live(self):
        planner = QueryPlanner(SearchEngine())
        plan = planner.plan("toyota", live=True)
        assert plan.route_names == (ROUTE_INDEXED,)

    def test_structured_live_hosts_bind_a_filter(self, service):
        plan = service.plan("city:portland", live=True)
        live = [r for r in plan.routes if isinstance(r, LiveVerticalRoute)]
        assert live, "a registered form binds the `city` attribute"
        router = service.vertical.router
        for host in live[0].hosts:
            assert router.source(host).mapping.input_for("city") is not None
