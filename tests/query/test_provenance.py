"""Provenance surfacing: ``service.report()`` and ``ServeStats`` tell
which routes ran, what the live probes spent, and how big the blends were."""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.query.plan import ROUTE_INDEXED, ROUTE_WEBTABLES
from repro.serve.frontend import QueryFrontend, ServeStats
from repro.webspace.sitegen import WebConfig


@pytest.fixture(scope="module")
def service() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=2, surface_site_count=1, max_records=40, seed=37))
        .surfacing(SurfacingConfig(max_urls_per_form=40))
        .create()
    )
    service.crawl(max_pages=60)
    service.surface()
    return service


class TestServiceReport:
    def test_report_carries_planning_provenance(self, service):
        service.query("city:portland records", k=10)
        service.search_all("records listings", k=5)
        report = service.report()
        planning = report.query_planning
        assert planning["plans"] >= 2
        assert planning["routes_taken"].get(ROUTE_INDEXED, 0) >= 2
        assert ROUTE_WEBTABLES in planning["hits_by_route"] or planning["routes_taken"].get(
            ROUTE_WEBTABLES, 0
        ) >= 0  # structured query planned the route even if it kept nothing
        assert "query planning:" in str(report)

    def test_report_without_plans_stays_quiet(self):
        fresh = (
            DeepWebService.build()
            .web(WebConfig(total_deep_sites=0, surface_site_count=1, max_records=10, seed=2))
            .create()
        )
        assert "query planning:" not in str(fresh.report())

    def test_stats_snapshot_is_deterministic(self, service):
        one = service.planner_stats.as_dict()
        two = service.planner_stats.as_dict()
        assert one == two
        assert list(one["routes_taken"]) == sorted(one["routes_taken"])


class TestServeStatsProvenance:
    def test_serve_plan_updates_plan_counters(self, service):
        plan = service.plan("records listings", k=5, include_webtables=False)
        with QueryFrontend(
            service.engine, workers=1, cache_size=32, executor=service.executor
        ) as frontend:
            frontend.serve_plan(plan)
            frontend.serve_plan(plan)  # cached serve still counts routes
            stats = frontend.stats()
        assert stats.plans_served == 2
        assert dict(stats.routes).get(ROUTE_INDEXED) == 2
        assert "plans: 2 served" in str(stats)
        # The cached serve lands in the shared provenance sink too.
        assert service.planner_stats.as_dict()["cached_plans"] >= 1

    def test_string_serving_reports_no_plan_lines(self, service):
        with QueryFrontend(service.engine, workers=1, cache_size=32) as frontend:
            frontend.serve("records", k=3)
            stats = frontend.stats()
        assert stats.plans_served == 0
        assert "plans:" not in str(stats)

    def test_from_counters_defaults_keep_compatibility(self):
        stats = ServeStats.from_counters(
            served=1, shed=0, cache_hits=0, cache_misses=1, latencies=[0.001]
        )
        assert stats.plans_served == 0 and stats.routes == ()
