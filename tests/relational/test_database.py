"""Tests for the Database container."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.errors import DuplicateTableError, UnknownTableError
from repro.relational.predicate import Eq
from repro.relational.query import Query
from repro.relational.schema import Column, DataType, TableSchema
from repro.relational.table import Table


def schema(name: str) -> TableSchema:
    return TableSchema(
        name=name,
        columns=[Column("id", DataType.INTEGER), Column("name", DataType.TEXT)],
    )


class TestTableManagement:
    def test_create_and_lookup(self):
        database = Database("test")
        table = database.create_table(schema("movies"))
        assert database.table("movies") is table
        assert "movies" in database
        assert database.table_names == ["movies"]

    def test_duplicate_table_rejected(self):
        database = Database("test")
        database.create_table(schema("movies"))
        with pytest.raises(DuplicateTableError):
            database.create_table(schema("movies"))

    def test_add_prebuilt_table(self):
        database = Database("test")
        table = Table(schema("music"))
        database.add_table(table)
        assert database.table("music") is table
        with pytest.raises(DuplicateTableError):
            database.add_table(Table(schema("music")))

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Database("test").table("missing")

    def test_len_counts_tables(self):
        database = Database("test")
        database.create_table(schema("a"))
        database.create_table(schema("b"))
        assert len(database) == 2


class TestDataAccess:
    def test_insert_and_total_rows(self):
        database = Database("test")
        database.create_table(schema("movies"))
        database.create_table(schema("music"))
        assert database.insert("movies", [{"id": 1, "name": "Up"}, {"id": 2, "name": "Heat"}]) == 2
        database.insert("music", [{"id": 1, "name": "Kind of Blue"}])
        assert database.total_rows() == 3

    def test_execute_routes_to_named_table(self):
        database = Database("test")
        database.create_table(schema("movies"))
        database.insert("movies", [{"id": 1, "name": "Up"}, {"id": 2, "name": "Heat"}])
        result = database.execute(Query(table="movies", predicate=Eq("name", "Heat")))
        assert result.total_matches == 1
        assert result.rows[0]["id"] == 2

    def test_execute_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Database("test").execute(Query(table="nope"))

    def test_all_rows_pairs(self):
        database = Database("test")
        database.create_table(schema("movies"))
        database.insert("movies", [{"id": 1, "name": "Up"}])
        pairs = database.all_rows()
        assert pairs == [("movies", {"id": 1, "name": "Up"})]
