"""Tests for the predicate algebra."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.relational.predicate import And, Contains, Eq, InSet, Or, Range, TruePredicate


ROW = {
    "id": 7,
    "make": "Toyota",
    "model": "Camry",
    "price": 8500,
    "year": 2003,
    "title": "2003 Toyota Camry sedan",
    "description": "clean title excellent condition located in Austin",
}


class TestTruePredicate:
    def test_matches_everything(self):
        assert TruePredicate().matches(ROW)
        assert TruePredicate().matches({})


class TestEq:
    def test_string_match_is_case_insensitive(self):
        assert Eq("make", "toyota").matches(ROW)
        assert Eq("make", " TOYOTA ").matches(ROW)

    def test_numeric_match(self):
        assert Eq("price", 8500).matches(ROW)
        assert not Eq("price", 8501).matches(ROW)

    def test_missing_column(self):
        assert not Eq("color", "red").matches(ROW)

    def test_columns(self):
        assert Eq("make", "x").columns() == {"make"}


class TestInSet:
    def test_membership_case_insensitive(self):
        assert InSet("make", ["HONDA", "toyota"]).matches(ROW)

    def test_non_member(self):
        assert not InSet("make", ["Honda", "Ford"]).matches(ROW)

    def test_numeric_membership(self):
        assert InSet("year", [2003, 2004]).matches(ROW)

    def test_missing_column(self):
        assert not InSet("color", ["red"]).matches(ROW)


class TestRange:
    def test_inclusive_bounds(self):
        assert Range("price", low=8500, high=8500).matches(ROW)

    def test_open_ended_low(self):
        assert Range("price", high=10000).matches(ROW)
        assert not Range("price", high=1000).matches(ROW)

    def test_open_ended_high(self):
        assert Range("price", low=5000).matches(ROW)
        assert not Range("price", low=9000).matches(ROW)

    def test_inverted_range_matches_nothing(self):
        predicate = Range("price", low=9000, high=1000)
        assert predicate.is_inverted
        assert not predicate.matches(ROW)

    def test_non_numeric_value_never_matches(self):
        assert not Range("make", low=0, high=10).matches(ROW)

    def test_missing_column(self):
        assert not Range("mileage", low=0, high=10**6).matches(ROW)


class TestContains:
    def test_single_keyword(self):
        assert Contains(["description"], "austin").matches(ROW)

    def test_all_keywords_required(self):
        assert Contains(["title", "description"], "toyota austin").matches(ROW)
        assert not Contains(["title", "description"], "toyota dallas").matches(ROW)

    def test_keyword_list_input(self):
        assert Contains(["title"], ["Toyota", "Camry"]).matches(ROW)

    def test_empty_keywords_match_everything(self):
        assert Contains(["title"], "").matches(ROW)

    def test_case_insensitive(self):
        assert Contains(["make"], "TOYOTA").matches(ROW)

    def test_columns(self):
        assert Contains(["a", "b"], "x").columns() == {"a", "b"}


class TestBooleanCombinators:
    def test_and_all_parts_must_match(self):
        predicate = And([Eq("make", "Toyota"), Range("price", low=8000, high=9000)])
        assert predicate.matches(ROW)
        assert not And([Eq("make", "Toyota"), Eq("model", "Civic")]).matches(ROW)

    def test_and_flattens_nested_and(self):
        nested = And([And([Eq("make", "Toyota")]), Eq("model", "Camry")])
        assert len(nested.parts) == 2

    def test_and_drops_true_predicates(self):
        predicate = And([TruePredicate(), Eq("make", "Toyota")])
        assert len(predicate.parts) == 1

    def test_empty_and_matches(self):
        assert And([]).matches(ROW)

    def test_or_any_part_matches(self):
        assert Or([Eq("make", "Honda"), Eq("model", "Camry")]).matches(ROW)
        assert not Or([Eq("make", "Honda"), Eq("model", "Civic")]).matches(ROW)

    def test_empty_or_matches_nothing(self):
        assert not Or([]).matches(ROW)

    def test_operator_overloads(self):
        combined = Eq("make", "Toyota") & Eq("model", "Camry")
        assert isinstance(combined, And) and combined.matches(ROW)
        either = Eq("make", "Honda") | Eq("model", "Camry")
        assert isinstance(either, Or) and either.matches(ROW)

    def test_columns_union(self):
        predicate = And([Eq("make", "x"), Range("price", 1, 2), Contains(["title"], "y")])
        assert predicate.columns() == {"make", "price", "title"}


class TestRangeProperties:
    @given(
        value=st.integers(min_value=-1000, max_value=1000),
        low=st.integers(min_value=-1000, max_value=1000),
        high=st.integers(min_value=-1000, max_value=1000),
    )
    def test_range_matches_iff_value_within(self, value, low, high):
        row = {"x": value}
        expected = low <= value <= high
        assert Range("x", low=low, high=high).matches(row) == expected

    @given(value=st.integers(-100, 100), bound=st.integers(-100, 100))
    def test_eq_and_inset_agree(self, value, bound):
        row = {"x": value}
        assert Eq("x", bound).matches(row) == InSet("x", [bound]).matches(row)
