"""Tests for query execution: ordering, pagination, projection."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.relational.errors import UnknownColumnError
from repro.relational.predicate import Eq, TruePredicate
from repro.relational.query import Query, execute, page_count, paginate, select
from repro.relational.schema import Column, DataType, TableSchema
from repro.relational.table import Table


def build_table(row_count: int = 25) -> Table:
    schema = TableSchema(
        name="books",
        columns=[
            Column("id", DataType.INTEGER),
            Column("title", DataType.TEXT, searchable=True),
            Column("genre", DataType.CATEGORY),
            Column("price", DataType.INTEGER),
        ],
    )
    table = Table(schema)
    genres = ["mystery", "romance", "history"]
    table.insert_many(
        {
            "id": index,
            "title": f"book {index:03d}",
            "genre": genres[index % 3],
            "price": (index * 7) % 50,
        }
        for index in range(1, row_count + 1)
    )
    return table


class TestExecute:
    def test_total_matches_and_rows(self):
        table = build_table()
        result = execute(table, Query(table="books", predicate=Eq("genre", "mystery")))
        assert result.total_matches == len(table.scan(Eq("genre", "mystery")))
        assert len(result.rows) == result.total_matches

    def test_limit_and_offset(self):
        table = build_table()
        result = execute(table, Query(table="books", limit=10, offset=20))
        assert result.total_matches == 25
        assert len(result.rows) == 5
        assert result.offset == 20

    def test_has_more_flag(self):
        table = build_table()
        first_page = execute(table, Query(table="books", limit=10))
        last_page = execute(table, Query(table="books", limit=10, offset=20))
        assert first_page.has_more
        assert not last_page.has_more

    def test_order_by_ascending_and_descending(self):
        table = build_table()
        ascending = execute(table, Query(table="books", order_by="price"))
        descending = execute(table, Query(table="books", order_by="price", descending=True))
        prices_asc = [row["price"] for row in ascending.rows]
        prices_desc = [row["price"] for row in descending.rows]
        assert prices_asc == sorted(prices_asc)
        assert prices_desc == sorted(prices_desc, reverse=True)

    def test_order_by_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            execute(build_table(), Query(table="books", order_by="missing"))

    def test_order_by_handles_none_values(self):
        table = build_table(3)
        table.insert({"id": 99, "title": "untitled", "genre": None, "price": 1})
        result = execute(table, Query(table="books", order_by="genre"))
        assert result.rows[0]["id"] == 99  # None sorts first

    def test_projection(self):
        result = execute(build_table(), Query(table="books", projection=("id", "price"), limit=3))
        assert set(result.rows[0].keys()) == {"id", "price"}

    def test_offset_beyond_total(self):
        result = execute(build_table(5), Query(table="books", limit=10, offset=50))
        assert result.rows == ()
        assert result.total_matches == 5

    def test_result_rows_are_copies(self):
        table = build_table(3)
        result = execute(table, Query(table="books"))
        result.rows[0]["title"] = "mutated"
        assert table.get(result.rows[0]["id"])["title"] != "mutated"


class TestPaginationHelpers:
    def test_page_count(self):
        assert page_count(0, 10) == 0
        assert page_count(10, 10) == 1
        assert page_count(11, 10) == 2

    def test_page_count_invalid_page_size(self):
        with pytest.raises(ValueError):
            page_count(5, 0)

    def test_paginate_builds_offsets(self):
        base = Query(table="books", predicate=Eq("genre", "mystery"))
        page2 = paginate(base, page=2, page_size=10)
        assert page2.offset == 10
        assert page2.limit == 10
        assert page2.predicate == base.predicate

    def test_paginate_rejects_page_zero(self):
        with pytest.raises(ValueError):
            paginate(Query(table="books"), page=0, page_size=10)

    def test_pages_cover_all_rows_without_overlap(self):
        table = build_table(23)
        base = Query(table="books", predicate=TruePredicate())
        seen: list[int] = []
        for page in range(1, page_count(23, 7) + 1):
            result = execute(table, paginate(base, page, 7))
            seen.extend(row["id"] for row in result.rows)
        assert sorted(seen) == list(range(1, 24))


class TestSelectHelper:
    def test_select_with_predicate_and_limit(self):
        table = build_table()
        result = select(table, predicate=Eq("genre", "romance"), limit=2)
        assert len(result.rows) == 2
        assert all(row["genre"] == "romance" for row in result.rows)

    def test_select_projection(self):
        result = select(build_table(), columns=["id"], limit=1)
        assert list(result.rows[0].keys()) == ["id"]


class TestPaginationProperty:
    @given(total=st.integers(min_value=0, max_value=200), page_size=st.integers(min_value=1, max_value=50))
    def test_page_count_times_size_covers_total(self, total, page_size):
        pages = page_count(total, page_size)
        assert pages * page_size >= total
        assert (pages - 1) * page_size < total or pages == 0
