"""Tests for table schemas and column types."""

from __future__ import annotations

import pytest

from repro.relational.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, DataType, TableSchema


def make_schema() -> TableSchema:
    return TableSchema(
        name="listings",
        columns=[
            Column("id", DataType.INTEGER),
            Column("title", DataType.TEXT, searchable=True),
            Column("make", DataType.CATEGORY),
            Column("price", DataType.INTEGER),
            Column("zipcode", DataType.ZIPCODE),
            Column("posted", DataType.DATE),
        ],
    )


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric
        assert not DataType.ZIPCODE.is_numeric


class TestColumnValidation:
    def test_accepts_correct_types(self):
        Column("price", DataType.INTEGER).validate_value(100)
        Column("title", DataType.TEXT).validate_value("hello")
        Column("zip", DataType.ZIPCODE).validate_value("02139")
        Column("score", DataType.FLOAT).validate_value(1.5)
        Column("score", DataType.FLOAT).validate_value(2)

    def test_rejects_wrong_types(self):
        with pytest.raises(SchemaError):
            Column("price", DataType.INTEGER).validate_value("100")
        with pytest.raises(SchemaError):
            Column("title", DataType.TEXT).validate_value(5)

    def test_rejects_booleans(self):
        with pytest.raises(SchemaError):
            Column("price", DataType.INTEGER).validate_value(True)

    def test_none_is_allowed(self):
        Column("price", DataType.INTEGER).validate_value(None)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("id", DataType.INTEGER), Column("id", DataType.TEXT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("a", DataType.TEXT)], primary_key="id")

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("make").dtype is DataType.CATEGORY
        with pytest.raises(UnknownColumnError):
            schema.column("nonexistent")

    def test_has_column(self):
        schema = make_schema()
        assert schema.has_column("price")
        assert not schema.has_column("mileage")

    def test_column_names_order(self):
        assert make_schema().column_names[:3] == ["id", "title", "make"]

    def test_searchable_columns(self):
        searchable = [column.name for column in make_schema().searchable_columns]
        assert searchable == ["title"]

    def test_categorical_and_numeric_columns(self):
        schema = make_schema()
        assert [column.name for column in schema.categorical_columns()] == ["make"]
        assert {column.name for column in schema.numeric_columns()} == {"id", "price"}

    def test_validate_row_requires_primary_key(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"title": "x"})

    def test_validate_row_rejects_unknown_column(self):
        schema = make_schema()
        with pytest.raises(UnknownColumnError):
            schema.validate_row({"id": 1, "mileage": 5})

    def test_validate_row_accepts_partial_rows(self):
        make_schema().validate_row({"id": 1, "title": "ok"})

    def test_project(self):
        projected = make_schema().project(["id", "price"])
        assert projected.column_names == ["id", "price"]
        assert projected.primary_key == "id"

    def test_project_without_primary_key(self):
        projected = make_schema().project(["title", "price"])
        assert projected.primary_key == "title"

    def test_project_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_schema().project(["id", "nope"])
