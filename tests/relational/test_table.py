"""Tests for tables: insertion, indexes, scans and statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.relational.errors import SchemaError, UnknownColumnError
from repro.relational.predicate import And, Contains, Eq, InSet, Range
from repro.relational.schema import Column, DataType, TableSchema
from repro.relational.table import Table


def make_table(with_rows: bool = True) -> Table:
    schema = TableSchema(
        name="cars",
        columns=[
            Column("id", DataType.INTEGER),
            Column("make", DataType.CATEGORY),
            Column("price", DataType.INTEGER),
            Column("description", DataType.TEXT, searchable=True),
        ],
    )
    table = Table(schema)
    if with_rows:
        table.insert_many(
            [
                {"id": 1, "make": "Toyota", "price": 5000, "description": "red toyota camry"},
                {"id": 2, "make": "Honda", "price": 7000, "description": "blue honda civic"},
                {"id": 3, "make": "Toyota", "price": 9000, "description": "silver toyota prius"},
                {"id": 4, "make": "Ford", "price": 3000, "description": "old ford focus"},
            ]
        )
    return table


class TestInsertion:
    def test_len_and_iteration(self):
        table = make_table()
        assert len(table) == 4
        assert {row["id"] for row in table} == {1, 2, 3, 4}

    def test_duplicate_primary_key_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "make": "Kia", "price": 1})

    def test_schema_validation_on_insert(self):
        table = make_table(with_rows=False)
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "price": "not a number"})

    def test_insert_many_returns_count(self):
        table = make_table(with_rows=False)
        assert table.insert_many([{"id": 1}, {"id": 2}]) == 2


class TestAccess:
    def test_get_by_primary_key(self):
        table = make_table()
        assert table.get(2)["make"] == "Honda"
        assert table.get(99) is None

    def test_primary_keys(self):
        assert make_table().primary_keys() == [1, 2, 3, 4]

    def test_distinct_values(self):
        assert make_table().distinct_values("make") == ["Toyota", "Honda", "Ford"]

    def test_distinct_values_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_table().distinct_values("color")

    def test_column_statistics_numeric(self):
        stats = make_table().column_statistics("price")
        assert stats["count"] == 4
        assert stats["min"] == 3000
        assert stats["max"] == 9000
        assert stats["mean"] == pytest.approx(6000)

    def test_column_statistics_categorical(self):
        stats = make_table().column_statistics("make")
        assert stats["distinct"] == 3
        assert "min" not in stats


class TestScan:
    def test_scan_all(self):
        assert len(make_table().scan()) == 4

    def test_scan_with_eq(self):
        rows = make_table().scan(Eq("make", "toyota"))
        assert {row["id"] for row in rows} == {1, 3}

    def test_scan_with_range(self):
        rows = make_table().scan(Range("price", low=4000, high=8000))
        assert {row["id"] for row in rows} == {1, 2}

    def test_scan_with_contains(self):
        rows = make_table().scan(Contains(["description"], "toyota"))
        assert {row["id"] for row in rows} == {1, 3}

    def test_scan_with_conjunction(self):
        predicate = And([Eq("make", "Toyota"), Range("price", low=6000, high=None)])
        rows = make_table().scan(predicate)
        assert [row["id"] for row in rows] == [3]

    def test_count(self):
        assert make_table().count(Eq("make", "Ford")) == 1


class TestIndexes:
    def test_index_answers_equality(self):
        table = make_table()
        table.create_index("make")
        rows = table.scan(Eq("make", "Toyota"))
        assert {row["id"] for row in rows} == {1, 3}

    def test_index_with_inset(self):
        table = make_table()
        table.create_index("make")
        rows = table.scan(InSet("make", ["Honda", "Ford"]))
        assert {row["id"] for row in rows} == {2, 4}

    def test_index_stays_consistent_after_insert(self):
        table = make_table()
        table.create_index("make")
        table.insert({"id": 5, "make": "Toyota", "price": 100, "description": "x"})
        assert {row["id"] for row in table.scan(Eq("make", "Toyota"))} == {1, 3, 5}

    def test_index_on_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_table().create_index("color")

    def test_index_and_scan_agree(self):
        indexed = make_table()
        indexed.create_index("make")
        plain = make_table()
        for make in ("Toyota", "Honda", "Ford", "Kia"):
            assert {row["id"] for row in indexed.scan(Eq("make", make))} == {
                row["id"] for row in plain.scan(Eq("make", make))
            }


class TestPropertyBased:
    @given(
        prices=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50, unique=True),
        low=st.integers(min_value=0, max_value=10**6),
        high=st.integers(min_value=0, max_value=10**6),
    )
    def test_range_scan_equals_filter(self, prices, low, high):
        schema = TableSchema(
            name="t", columns=[Column("id", DataType.INTEGER), Column("price", DataType.INTEGER)]
        )
        table = Table(schema)
        table.insert_many({"id": index, "price": price} for index, price in enumerate(prices))
        scanned = {row["id"] for row in table.scan(Range("price", low=low, high=high))}
        expected = {index for index, price in enumerate(prices) if low <= price <= high}
        assert scanned == expected
