"""Fixtures for the chaos/resilience suite.

Service builds here are *deterministic twins*: calling the factory twice
yields two services with byte-identical stores (same seeded generation,
same crawl/surface/harvest), which is what lets tests inject faults into
one and compare against the other without snapshot plumbing.
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.webspace.sitegen import WebConfig


def build_chaos_service() -> DeepWebService:
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=4, surface_site_count=1, max_records=50, seed=7))
        .surfacing(SurfacingConfig(max_urls_per_form=40))
        .create()
    )
    service.crawl(max_pages=40)
    service.surface()
    service.harvest_tables()
    service.vertical  # register live hosts (clean, un-faulted fetches)
    return service


@pytest.fixture(scope="module")
def chaos_factory():
    return build_chaos_service


@pytest.fixture(scope="module")
def clean_service():
    """A module-scoped fault-free twin; tests must treat it as read-only
    apart from executing plans (which only appends stats)."""
    return build_chaos_service()
