"""CircuitBreaker state machine under a fake clock (no real waiting)."""

from __future__ import annotations

import pytest

from repro.resilience.retry import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerRegistry,
    CircuitBreaker,
)

pytestmark = pytest.mark.chaos


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_breaker(clock: FakeClock, **kwargs) -> CircuitBreaker:
    defaults = dict(
        failure_threshold=0.5, window=4, min_calls=4, cooldown=10.0,
        half_open_probes=2, clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestClosedToOpen:
    def test_stays_closed_below_min_calls(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()  # 3 failures < min_calls=4
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_trips_at_failure_threshold(self, clock):
        breaker = make_breaker(clock)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # 1/3 failures, below threshold
        breaker.record_failure()  # 2/4 -> 50% >= threshold
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_sliding_window_forgets_old_failures(self, clock):
        breaker = make_breaker(clock, window=4, min_calls=4)
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):  # pushes both failures out of the window
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            make_breaker(clock, failure_threshold=0.0)
        with pytest.raises(ValueError):
            make_breaker(clock, window=0)


class TestCooldownAndHalfOpen:
    def trip(self, breaker: CircuitBreaker) -> None:
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN

    def test_open_until_cooldown_elapses(self, clock):
        breaker = make_breaker(clock)
        self.trip(breaker)
        clock.advance(9.9)
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == STATE_HALF_OPEN

    def test_half_open_admits_limited_probes(self, clock):
        breaker = make_breaker(clock, half_open_probes=2)
        self.trip(breaker)
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe quota spent

    def test_probe_successes_reclose(self, clock):
        breaker = make_breaker(clock, half_open_probes=2)
        self.trip(breaker)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN  # one probe is not enough
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        # Re-closed with a fresh window: one failure cannot re-trip.
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make_breaker(clock)
        self.trip(breaker)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        clock.advance(9.0)  # cooldown restarted at the re-trip
        assert breaker.state == STATE_OPEN
        clock.advance(1.0)
        assert breaker.state == STATE_HALF_OPEN


class TestBreakerRegistry:
    def test_one_breaker_per_host_with_shared_config(self, clock):
        registry = BreakerRegistry(min_calls=1, window=1, clock=clock)
        breaker = registry.for_host("a.example.com")
        assert registry.for_host("a.example.com") is breaker
        assert registry.for_host("b.example.com") is not breaker
        breaker.record_failure()
        assert registry.states() == {
            "a.example.com": STATE_OPEN,
            "b.example.com": STATE_CLOSED,
        }
        assert registry.open_hosts() == ["a.example.com"]
        assert registry.trips() == 1

    def test_skips_tracked_per_host(self):
        registry = BreakerRegistry()
        registry.record_skip("a.example.com")
        registry.record_skip("a.example.com")
        registry.record_skip("b.example.com")
        assert registry.skips("a.example.com") == 2
        assert registry.skips() == 3
