"""Chaos soak: the whole stack survives heavy fault rates end to end.

Every subsystem (crawl, surfacing, harvest, vertical probing, plan
execution, serving, reporting) runs against a web injecting >= 20%
transient errors plus timeouts and outage windows.  The assertion is
blunt and load-bearing: zero unhandled exceptions anywhere, and a
coherent report at the end.  Skip-and-record is the only acceptable
failure mode.
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.resilience import BreakerRegistry, RetryPolicy
from repro.serve.loadgen import KIND_STRUCTURED, WorkloadGenerator
from repro.webspace.sitegen import WebConfig, generate_web

pytestmark = pytest.mark.chaos


def test_full_stack_soak_at_twenty_percent_errors():
    web = generate_web(
        WebConfig(total_deep_sites=4, surface_site_count=1, max_records=50, seed=31)
    )
    schedule = WorkloadGenerator(web, seed="soak").fault_schedule(
        error_rate=0.3,  # per-host scaling keeps every host >= 0.15, mean ~0.3
        timeout_rate=0.1,
        outage_hosts=1,
    )
    service = (
        DeepWebService.build()
        .web(web)
        .surfacing(SurfacingConfig(max_urls_per_form=40))
        .faults(schedule)
        .resilience(
            policy=RetryPolicy(max_attempts=3, seed="soak"),
            breakers=BreakerRegistry(min_calls=10),
        )
        .create()
    )

    # Offline tiers: crawl, surface, harvest -- all skip-and-record.
    crawl = service.crawl(max_pages=80)
    results = service.surface()
    service.harvest_tables()
    assert crawl.fetch_errors > 0, "the soak must actually hit crawl faults"
    assert len(results) == 4, "every site yields a result, degraded or not"
    assert any(result.degraded for result in results)
    for result in results:
        assert result.fetch_errors >= 0 and result.urls_indexed >= 0

    # Query tiers: mixed keyword/structured/table workload, live probing on.
    generator = WorkloadGenerator(service.web, seed="soak-queries")
    served = 0
    for query in generator.mixed_stream(120, k=8):
        plan = service.plan(
            query.text, k=query.k, min_per_source=2,
            live=query.kind == KIND_STRUCTURED,
        )
        result = service.execute(plan)
        served += len(result.hits)
    assert served > 0, "heavy faults may shrink answers, not erase them all"

    # The report renders and owns up to the damage.
    report = service.report()
    lines = report.lines()
    assert any(line.startswith("resilience:") for line in lines)
    meter = service.web.load_meter
    assert meter.errors() > 0
    assert report.resilience["fetch_errors"] == meter.errors()
    assert str(report)  # full rendering never crashes


def test_soak_replays_byte_identically():
    """The same seeds replay the identical soak -- errors, retries, output."""

    def run():
        web = generate_web(
            WebConfig(total_deep_sites=3, surface_site_count=1, max_records=40, seed=37)
        )
        schedule = WorkloadGenerator(web, seed="soak-replay").fault_schedule(
            error_rate=0.25, timeout_rate=0.05
        )
        service = (
            DeepWebService.build()
            .web(web)
            .surfacing(SurfacingConfig(max_urls_per_form=30))
            .faults(schedule)
            .resilience(policy=RetryPolicy(max_attempts=2, seed="soak-replay"))
            .create()
        )
        service.crawl(max_pages=40)
        service.surface()
        meter = service.web.load_meter
        return (
            service.report().lines(),
            [service.search_all("used toyota", k=10)],
            meter.errors(),
            meter.retries(),
        )

    assert run() == run()
