"""With fault injection disabled, the resilience tier must be invisible.

The wrappers may not perturb a single byte of output on the clean path:
same surfaced results, same search answers, same report rendering --
otherwise every pre-chaos determinism guarantee in the repo would
silently depend on whether the tier happens to be installed.
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.resilience import BreakerRegistry, FaultPlan, FaultSpec, RetryPolicy
from repro.resilience.faults import FaultyWeb
from repro.resilience.retry import ResilientWeb
from repro.webspace.sitegen import WebConfig

pytestmark = pytest.mark.chaos

WEB = WebConfig(total_deep_sites=3, surface_site_count=1, max_records=50, seed=23)


def build(faults: FaultPlan | None = None, resilient: bool = False):
    builder = (
        DeepWebService.build().web(WEB).surfacing(SurfacingConfig(max_urls_per_form=40))
    )
    if faults is not None:
        builder = builder.faults(faults)
    if resilient:
        builder = builder.resilience(
            policy=RetryPolicy(max_attempts=3, seed="clean"),
            breakers=BreakerRegistry(),
        )
    service = builder.create()
    service.crawl(max_pages=40)
    service.surface()
    service.harvest_tables()
    return service


def observable_output(service):
    queries = ["used toyota", "category:books", "price title year"]
    return (
        service.report().lines(),
        [service.search_all(query, k=10) for query in queries],
        len(service.engine),
    )


class TestCleanPathByteIdentity:
    def test_disabled_plan_and_resilience_tier_change_nothing(self):
        plain = observable_output(build())
        noisy_but_disabled = FaultPlan(
            seed=5, default=FaultSpec(error_rate=0.5), enabled=False
        )
        wrapped = observable_output(build(faults=noisy_but_disabled, resilient=True))
        assert wrapped == plain

    def test_quiet_plan_changes_nothing(self):
        plain = observable_output(build())
        quiet = observable_output(build(faults=FaultPlan(seed=5), resilient=True))
        assert quiet == plain

    def test_clean_run_reports_no_resilience_noise(self):
        service = build(faults=FaultPlan(seed=5), resilient=True)
        lines = service.report().lines()
        assert not any("resilience" in line for line in lines)
        assert not any("degraded" in line for line in lines)
        assert service.web.load_meter.errors() == 0
        assert service.web.load_meter.retries() == 0


class TestWrapperTransparency:
    def test_wrappers_share_registry_and_meter(self, car_site, car_web):
        faulty = FaultyWeb(car_web, FaultPlan())
        resilient = ResilientWeb(faulty)
        assert resilient.fetch(car_site.homepage_url()).ok
        # One fetch, recorded once, visible through every layer.
        assert car_web.load_meter.total(host=car_site.host) == 1
        assert resilient.load_meter is car_web.load_meter
        assert [site.host for site in resilient.sites()] == [site.host for site in car_web.sites()]
        assert faulty.events == []
