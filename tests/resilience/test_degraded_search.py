"""Graceful degradation end to end: partial answers, honest provenance.

The contract under test is the no-wrong-answers invariant -- a faulted
execution may return *fewer* results than the fault-free twin, but every
result it does return must be one the fault-free run also produces --
plus the provenance trail (RouteOutcome/PlanResult degraded flags,
planner stats, the serving frontend's refusal to cache partial answers).
"""

from __future__ import annotations

import pytest

from repro.resilience import (
    BreakerRegistry,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    compare_degraded,
)
from repro.serve.loadgen import KIND_STRUCTURED, WorkloadGenerator
from repro.webspace.loadmeter import AGENT_VIRTUAL

pytestmark = pytest.mark.chaos


def plan_workload(service, count: int = 60, seed: str = "chaos-degraded"):
    """A seeded mixed workload planned on ``service`` (structured go live)."""
    workload = WorkloadGenerator(service.web, seed=seed).mixed_stream(count, k=8)
    return [
        service.plan(
            query.text, k=query.k, min_per_source=2,
            live=query.kind == KIND_STRUCTURED,
        )
        for query in workload
    ]


def heavy_faults(seed="degraded-test") -> FaultPlan:
    """Virtual-agent-only faults heavy enough to defeat a short retry."""
    return FaultPlan(
        seed=seed,
        default=FaultSpec(error_rate=0.5, timeout_rate=0.1),
        agents=(AGENT_VIRTUAL,),
    )


class TestSubsetInvariant:
    def test_faulted_hits_are_a_subset_of_the_fault_free_universe(
        self, clean_service, chaos_factory
    ):
        faulted = chaos_factory()
        faulted.inject_faults(
            heavy_faults(),
            policy=RetryPolicy(max_attempts=2, seed="degraded-test"),
            breakers=BreakerRegistry(),
        )
        plans = plan_workload(clean_service)
        comparison = compare_degraded(clean_service, faulted, plans)
        assert comparison.ok, "\n".join(comparison.violations)
        assert comparison.live_plans > 0
        assert comparison.degraded_plans > 0, "faults this heavy must degrade"
        assert comparison.faulted_hits <= comparison.clean_hits
        assert comparison.failed_host_events > 0

    def test_cacheable_plans_stay_byte_identical_under_faults(
        self, clean_service, chaos_factory
    ):
        """Store-only plans never fetch, so query-time faults cannot touch
        them at all -- not even to shrink them."""
        faulted = chaos_factory()
        faulted.inject_faults(heavy_faults())
        plans = [plan for plan in plan_workload(clean_service) if plan.cacheable]
        assert plans
        for plan in plans:
            assert faulted.execute(plan).hits == clean_service.execute(plan).hits


class TestDegradedDeterminism:
    def test_same_seed_same_degraded_output(self, chaos_factory):
        """Two identical twins under the identical fault plan produce
        byte-identical degraded answers -- chaos runs are replayable."""

        def run():
            service = chaos_factory()
            service.inject_faults(
                heavy_faults(),
                policy=RetryPolicy(max_attempts=2, seed="degraded-test"),
            )
            outputs = []
            for plan in plan_workload(service):
                result = service.execute(plan)
                # Project out RouteOutcome.seconds -- wall-clock timing is
                # the one field allowed to differ between identical runs.
                routes = tuple(
                    (o.route, o.produced, o.kept, o.fetches_spent,
                     o.skipped, o.degraded, o.failed_hosts, o.error)
                    for o in result.routes
                )
                outputs.append(
                    (result.hits, result.degraded, result.failed_hosts, routes)
                )
            return outputs

        assert run() == run()


class TestDegradedProvenance:
    def test_route_outcome_records_failed_hosts(self, chaos_factory):
        service = chaos_factory()
        live_plans = [p for p in plan_workload(service) if not p.cacheable]
        assert live_plans
        plan = live_plans[0]
        live_route = next(r for r in plan.routes if not r.cacheable)
        dead_host = live_route.hosts[0]
        # Kill exactly one routed host; everything else stays healthy.
        service.inject_faults(
            FaultPlan(
                seed=1,
                hosts={dead_host: FaultSpec(error_rate=1.0)},
                agents=(AGENT_VIRTUAL,),
            )
        )
        result = service.execute(plan)
        assert result.degraded
        assert dead_host in result.failed_hosts
        outcome = next(o for o in result.routes if o.route == live_route.name)
        assert outcome.degraded
        assert dead_host in outcome.failed_hosts
        assert service.executor.stats.as_dict()["degraded_plans"] >= 1

    def test_degraded_plans_render_in_service_report(self, chaos_factory):
        service = chaos_factory()
        service.inject_faults(heavy_faults())
        for plan in plan_workload(service, count=30):
            service.execute(plan)
        lines = service.report().lines()
        assert any(line.startswith("resilience:") for line in lines)
        assert any("degraded plans:" in line for line in lines)


class TestFrontendNeverCachesDegraded:
    def test_degraded_serves_counted_and_uncached(self, chaos_factory):
        service = chaos_factory()
        degraded_plan = next(
            plan for plan in plan_workload(service) if not plan.cacheable
        )
        live_route = next(r for r in degraded_plan.routes if not r.cacheable)
        # Every routed live host is hard-down: both serves degrade for sure.
        service.inject_faults(
            FaultPlan(
                seed=1,
                hosts={
                    host: FaultSpec(error_rate=1.0) for host in live_route.hosts
                },
                agents=(AGENT_VIRTUAL,),
            )
        )
        frontend = service.frontend
        first = frontend.serve_plan(degraded_plan)
        second = frontend.serve_plan(degraded_plan)
        stats = frontend.stats()
        assert stats.degraded_plans >= 2
        # Neither serve was answered from cache: a shrunken answer must
        # never outlive the fault that shrank it.
        assert not first.cached and not second.cached
        assert any("degraded" in line for line in stats.lines())
