"""FaultPlan/FaultyWeb: seeded fault schedules replay bit for bit."""

from __future__ import annotations

import pytest

from repro.resilience.faults import (
    DECISION_OK,
    KIND_ERROR,
    KIND_OK,
    KIND_OUTAGE,
    KIND_TIMEOUT,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    FaultyWeb,
    ScriptedFaults,
)
from repro.serve.loadgen import WorkloadGenerator
from repro.webspace.loadmeter import AGENT_CRAWLER, AGENT_VIRTUAL
from repro.webspace.web import FetchError, HostUnavailable, Web

pytestmark = pytest.mark.chaos

NOISY = FaultSpec(error_rate=0.3, timeout_rate=0.1, latency_mean=0.05, latency_jitter=0.02)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(timeout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(outages=((5, 2),))

    def test_quiet_spec_never_faults(self):
        plan = FaultPlan(seed=3)  # all-default: quiet
        assert all(plan.decide("host", i) is DECISION_OK for i in range(50))


class TestFaultPlanDeterminism:
    def test_same_seed_same_decision_sequence(self):
        first = FaultPlan(seed=7, default=NOISY)
        second = FaultPlan(seed=7, default=NOISY)
        sequence = [first.decide("shop.example.com", i) for i in range(300)]
        assert sequence == [second.decide("shop.example.com", i) for i in range(300)]
        kinds = {decision.kind for decision in sequence}
        assert KIND_ERROR in kinds and KIND_TIMEOUT in kinds and KIND_OK in kinds

    def test_different_seed_or_host_diverges(self):
        plan = FaultPlan(seed=7, default=NOISY)
        other_seed = FaultPlan(seed=8, default=NOISY)
        host = "shop.example.com"
        assert [plan.decide(host, i) for i in range(200)] != [
            other_seed.decide(host, i) for i in range(200)
        ]
        assert [plan.decide(host, i) for i in range(200)] != [
            plan.decide("other.example.com", i) for i in range(200)
        ]

    def test_decisions_stateless_under_interleaving(self):
        """decide(host, i) is a pure function -- call order cannot matter."""
        plan = FaultPlan(seed=9, default=NOISY)
        straight = [plan.decide("a.example.com", i) for i in range(50)]
        interleaved = []
        for i in range(50):
            plan.decide("b.example.com", i)  # unrelated traffic
            interleaved.append(plan.decide("a.example.com", i))
        assert straight == interleaved

    def test_outage_window_is_deterministic_by_index(self):
        spec = FaultSpec(error_rate=0.2, outages=((3, 6),))
        plan = FaultPlan(seed=1, hosts={"h.example.com": spec})
        kinds = [plan.decide("h.example.com", i).kind for i in range(8)]
        assert kinds[3:6] == [KIND_OUTAGE, KIND_OUTAGE, KIND_OUTAGE]
        assert KIND_OUTAGE not in kinds[:3] + kinds[6:]


class TestAgentGating:
    def test_agent_filter_and_enabled_flag(self):
        plan = FaultPlan(seed=1, default=NOISY, agents=(AGENT_VIRTUAL,))
        assert plan.applies_to(AGENT_VIRTUAL)
        assert not plan.applies_to(AGENT_CRAWLER)
        plan.enabled = False
        assert not plan.applies_to(AGENT_VIRTUAL)

    def test_non_matching_fetches_consume_no_fault_indices(self, car_site, car_web):
        """Crawler traffic through an agent-gated plan must not shift the
        fault sequence seen by the gated agent."""
        script = ScriptedFaults(
            {car_site.host: [FaultDecision(kind=KIND_ERROR)]}, agents=(AGENT_VIRTUAL,)
        )
        web = FaultyWeb(car_web, script)
        for _ in range(5):  # would exhaust the script if indices advanced
            assert web.fetch(car_site.homepage_url(), agent=AGENT_CRAWLER).ok
        with pytest.raises(FetchError):
            web.fetch(car_site.homepage_url(), agent=AGENT_VIRTUAL)

    def test_disabling_pauses_without_consuming_indices(self, car_site, car_web):
        script = ScriptedFaults({car_site.host: [FaultDecision(kind=KIND_OUTAGE)]})
        web = FaultyWeb(car_web, script)
        script.enabled = False
        assert web.fetch(car_site.homepage_url()).ok
        script.enabled = True  # resumes at index 0: the outage still fires
        with pytest.raises(HostUnavailable):
            web.fetch(car_site.homepage_url())


def _faulted_fetch_run(seed: int, fetches: int = 120):
    """One seeded run against a fresh car site; returns (event log, pages)."""
    from repro.datagen.domains import domain
    from repro.util.rng import SeededRng
    from repro.webspace.sitegen import build_deep_site

    site = build_deep_site(
        domain("used_cars"), "cars.chaos.example.com", 40, SeededRng("chaos-site")
    )
    web = Web()
    web.register(site)
    faulty = FaultyWeb(web, FaultPlan(seed=seed, default=NOISY))
    pages = []
    for _ in range(fetches):
        try:
            pages.append(faulty.fetch(site.homepage_url()).html)
        except FetchError as exc:
            pages.append(f"FAILED:{type(exc).__name__}")
    return faulty.event_log(), pages


class TestFaultyWeb:
    def test_same_seed_replays_byte_identical(self):
        events_a, pages_a = _faulted_fetch_run(seed=21)
        events_b, pages_b = _faulted_fetch_run(seed=21)
        assert events_a == events_b
        assert pages_a == pages_b
        assert any(page.startswith("FAILED:") for page in pages_a)

    def test_failures_metered_as_attempt_plus_error(self, car_site, car_web):
        script = ScriptedFaults({car_site.host: [FaultDecision(kind=KIND_ERROR)]})
        web = FaultyWeb(car_web, script)
        with pytest.raises(FetchError):
            web.fetch(car_site.homepage_url())
        meter = web.load_meter
        assert meter.total(host=car_site.host) == 1
        assert meter.errors(host=car_site.host) == 1
        assert web.fault_counts() == {KIND_ERROR: 1}

    def test_shares_registry_with_inner_web(self, car_site, car_web):
        web = FaultyWeb(car_web, FaultPlan())
        assert isinstance(web, Web)
        assert [site.host for site in web.sites()] == [car_site.host]


class TestFaultSchedule:
    def test_schedule_derives_deterministically_from_seed(self, small_web):
        first = WorkloadGenerator(small_web, seed="sched").fault_schedule(
            error_rate=0.25, timeout_rate=0.05, outage_hosts=2
        )
        second = WorkloadGenerator(small_web, seed="sched").fault_schedule(
            error_rate=0.25, timeout_rate=0.05, outage_hosts=2
        )
        assert first.seed == second.seed
        assert first.hosts == second.hosts  # FaultSpec is a frozen dataclass
        assert len(first.hosts) == len(list(small_web.sites()))
        outages = [spec for spec in first.hosts.values() if spec.outages]
        assert len(outages) == 2

    def test_schedule_scales_rates_per_host(self, small_web):
        plan = WorkloadGenerator(small_web, seed="sched").fault_schedule(error_rate=0.2)
        rates = {spec.error_rate for spec in plan.hosts.values()}
        assert len(rates) > 1  # per-host jitter actually differentiates
        assert all(0.1 <= rate <= 0.3 for rate in rates)
