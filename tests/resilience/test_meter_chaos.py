"""LoadMeter error/retry accounting (the chaos-visibility satellite)."""

from __future__ import annotations

import pytest

from repro.webspace.loadmeter import (
    AGENT_SURFACER,
    AGENT_VIRTUAL,
    LoadMeter,
)

pytestmark = pytest.mark.chaos


class TestErrorRetryCounters:
    def test_counters_filter_by_host_and_agent(self):
        meter = LoadMeter()
        meter.record_error("a.example.com", AGENT_VIRTUAL)
        meter.record_error("a.example.com", AGENT_SURFACER)
        meter.record_error("b.example.com", AGENT_VIRTUAL)
        meter.record_retry("a.example.com", AGENT_VIRTUAL)
        assert meter.errors() == 3
        assert meter.errors(host="a.example.com") == 2
        assert meter.errors(agent=AGENT_VIRTUAL) == 2
        assert meter.errors(host="a.example.com", agent=AGENT_SURFACER) == 1
        assert meter.retries() == 1
        assert meter.retries(host="b.example.com") == 0

    def test_outcome_summarizes_one_host(self):
        meter = LoadMeter()
        assert not meter.outcome("clean.example.com").degraded
        meter.record("h.example.com", AGENT_VIRTUAL)
        meter.record("h.example.com", AGENT_VIRTUAL)
        meter.record_error("h.example.com", AGENT_VIRTUAL)
        meter.record_retry("h.example.com", AGENT_VIRTUAL)
        outcome = meter.outcome("h.example.com")
        assert (outcome.fetches, outcome.errors, outcome.retries) == (2, 1, 1)
        assert outcome.degraded

    def test_snapshot_carries_error_fields_and_stays_clean_by_default(self):
        meter = LoadMeter()
        meter.record("h.example.com", AGENT_SURFACER)
        snap = meter.snapshot("h.example.com")
        assert (snap.errors, snap.retries) == (0, 0)
        meter.record_error("h.example.com", AGENT_SURFACER)
        meter.record_retry("h.example.com", AGENT_SURFACER)
        snap = meter.snapshot("h.example.com")
        assert (snap.errors, snap.retries) == (1, 1)

    def test_reset_clears_all_three_tables(self):
        meter = LoadMeter()
        meter.record("h.example.com", AGENT_VIRTUAL)
        meter.record_error("h.example.com", AGENT_VIRTUAL)
        meter.record_retry("h.example.com", AGENT_VIRTUAL)
        meter.reset()
        assert meter.total() == 0
        assert meter.errors() == 0
        assert meter.retries() == 0
