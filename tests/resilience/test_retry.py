"""RetryPolicy/ResilientWeb: bounded, deterministic, metered retries."""

from __future__ import annotations

import pytest

from repro.resilience.faults import (
    KIND_ERROR,
    KIND_OUTAGE,
    KIND_TIMEOUT,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    FaultyWeb,
    ScriptedFaults,
)
from repro.resilience.retry import ResilientWeb, RetryPolicy
from repro.webspace.web import (
    FetchTimeout,
    HostUnavailable,
    TransientFetchError,
)

pytestmark = pytest.mark.chaos

ERROR = FaultDecision(kind=KIND_ERROR)


def resilient(car_web, script, **policy_kwargs) -> ResilientWeb:
    policy = RetryPolicy(seed="retry-test", **policy_kwargs)
    return ResilientWeb(FaultyWeb(car_web, script), policy=policy)


class TestBackoff:
    def test_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.5, seed=5)
        url = "http://h.example.com/?page=2"
        delays = [policy.backoff_delay(url, attempt) for attempt in (1, 2, 3)]
        assert delays == [policy.backoff_delay(url, attempt) for attempt in (1, 2, 3)]
        for attempt, delay in zip((1, 2, 3), delays):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base * 0.5 <= delay <= base * 1.5
        assert RetryPolicy(seed=6).backoff_delay(url, 1) != delays[0]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0)
        assert policy.backoff_delay("k", 5) == 2.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestRetryLoop:
    def test_transient_failure_retried_to_success(self, car_site, car_web):
        web = resilient(
            car_web, ScriptedFaults({car_site.host: [ERROR, ERROR]}), max_attempts=3
        )
        page = web.fetch(car_site.homepage_url())
        assert page.ok
        meter = web.load_meter
        assert meter.retries(host=car_site.host) == 2
        assert meter.errors(host=car_site.host) == 2
        # Two failed attempts + the final success all reached the host.
        assert meter.total(host=car_site.host) == 3
        assert web.retry_delay_total > 0.0
        assert web.exhausted_fetches == 0

    def test_attempts_bounded(self, car_site, car_web):
        web = resilient(
            car_web, ScriptedFaults({car_site.host: [ERROR] * 5}), max_attempts=3
        )
        with pytest.raises(TransientFetchError):
            web.fetch(car_site.homepage_url())
        assert web.load_meter.retries(host=car_site.host) == 2  # 3 attempts, 2 retries
        assert web.exhausted_fetches == 1

    def test_non_retryable_fails_immediately(self, car_site, car_web):
        web = resilient(
            car_web,
            ScriptedFaults({car_site.host: [FaultDecision(kind=KIND_OUTAGE)]}),
            max_attempts=5,
        )
        with pytest.raises(HostUnavailable):
            web.fetch(car_site.homepage_url())
        assert web.load_meter.retries(host=car_site.host) == 0

    def test_timeouts_are_retryable(self, car_site, car_web):
        web = resilient(
            car_web,
            ScriptedFaults(
                {car_site.host: [FaultDecision(kind=KIND_TIMEOUT, latency=0.5)]}
            ),
            max_attempts=2,
        )
        assert web.fetch(car_site.homepage_url()).ok
        assert web.load_meter.retries(host=car_site.host) == 1

    def test_total_deadline_exhausts_retry_budget(self, car_site, car_web):
        """Virtual time (stalls + backoff) is capped: a fetch that would
        sleep past the deadline fails as a timeout instead of retrying."""
        web = resilient(
            car_web,
            ScriptedFaults({car_site.host: [ERROR] * 10}),
            max_attempts=10,
            base_delay=1.0,
            jitter=0.0,
            total_deadline=2.5,
        )
        with pytest.raises(FetchTimeout) as excinfo:
            web.fetch(car_site.homepage_url())
        assert "retry budget exhausted" in str(excinfo.value)
        # The first delay (1.0) fits; the second (2.0) would push spent
        # virtual time to 3.0 > 2.5, so the loop gives up after one retry.
        assert web.load_meter.retries(host=car_site.host) == 1

    def test_retry_schedule_replays_identically(self, car_site):
        """Same (policy seed, url, script) -> identical accounted delays."""

        def run() -> float:
            from repro.datagen.domains import domain
            from repro.util.rng import SeededRng
            from repro.webspace.sitegen import build_deep_site
            from repro.webspace.web import Web

            site = build_deep_site(
                domain("used_cars"), car_site.host, 20, SeededRng("retry-replay")
            )
            web = Web()
            web.register(site)
            wrapped = resilient(
                web, ScriptedFaults({site.host: [ERROR, ERROR]}), max_attempts=3
            )
            wrapped.fetch(site.homepage_url())
            return wrapped.retry_delay_total

        assert run() == run()


class TestRetryStormVisibility:
    def test_storm_shows_up_in_load_meter(self, car_site, car_web):
        """Regression: a retry storm must be visible per host, not silent.

        A flaky host under a generous retry policy multiplies fetch
        attempts; the meter's errors/retries counters (and the per-host
        FetchOutcome) are the only way operators see that amplification.
        """
        plan = FaultPlan(
            seed="storm", hosts={car_site.host: FaultSpec(error_rate=0.6)}
        )
        web = ResilientWeb(
            FaultyWeb(car_web, plan), policy=RetryPolicy(max_attempts=4, seed="storm")
        )
        served = 0
        for _ in range(40):
            try:
                web.fetch(car_site.homepage_url())
                served += 1
            except Exception as exc:  # noqa: BLE001 - soak must record, not crash
                assert isinstance(exc, (TransientFetchError, FetchTimeout))
        meter = web.load_meter
        outcome = meter.outcome(car_site.host)
        assert served > 0
        assert outcome.retries > 10, "storm amplification must be metered"
        assert outcome.errors > 10
        assert outcome.degraded
        # The snapshot row surfaces the same counters for reporting.
        snap = meter.snapshot(car_site.host)
        assert snap.retries == outcome.retries
        assert snap.errors == outcome.errors
