"""The optimized BM25 paths must match a naive reference bit for bit."""

from __future__ import annotations

import math
import random
from collections import defaultdict

import pytest

from repro.search.inverted_index import InvertedIndex


def naive_score(index: InvertedIndex, docs: dict[int, list[str]], query, limit=None):
    """The textbook (seed) implementation: no idf cache, no norm cache,
    full sort, everything recomputed per hit."""
    n = len(docs)
    average_length = sum(len(tokens) for tokens in docs.values()) / n if n else 0.0
    accumulator = defaultdict(float)
    for term in query:
        df = sum(1 for tokens in docs.values() if term in tokens)
        if df == 0 or n == 0:
            continue
        idf = max(0.01, math.log((n - df + 0.5) / (df + 0.5) + 1.0))
        for doc_id, tokens in docs.items():
            frequency = tokens.count(term)
            if not frequency:
                continue
            length_norm = 1 - index.b + index.b * (
                len(tokens) / average_length if average_length else 1.0
            )
            tf = (frequency * (index.k1 + 1)) / (frequency + index.k1 * length_norm)
            accumulator[doc_id] += idf * tf
    ranked = sorted(accumulator.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit] if limit is not None else ranked


@pytest.fixture(scope="module")
def indexed_corpus():
    rng = random.Random(29)
    vocabulary = [f"term{i}" for i in range(70)]
    index = InvertedIndex()
    docs: dict[int, list[str]] = {}
    for doc_id in range(1, 121):
        tokens = [rng.choice(vocabulary) for _ in range(rng.randint(2, 40))]
        docs[doc_id] = tokens
        index.add_document(doc_id, tokens)
    return index, docs, vocabulary


class TestOptimizedVsNaive:
    def test_scores_bit_identical_across_random_queries(self, indexed_corpus):
        index, docs, vocabulary = indexed_corpus
        rng = random.Random(31)
        for _ in range(150):
            query = [rng.choice(vocabulary) for _ in range(rng.randint(1, 5))]
            limit = rng.choice([None, 1, 3, 10, 500])
            assert index.score(query, limit=limit) == naive_score(index, docs, query, limit)

    def test_topk_equals_truncated_full_sort(self, indexed_corpus):
        index, _docs, vocabulary = indexed_corpus
        query = vocabulary[:4]
        assert index.score(query, limit=7) == index.score(query, limit=None)[:7]

    def test_duplicate_query_terms_contribute_twice(self, indexed_corpus):
        index, docs, _vocabulary = indexed_corpus
        term = next(iter(docs[1]))
        assert index.score([term, term]) == naive_score(index, docs, [term, term])

    def test_caches_invalidated_on_mutation(self, indexed_corpus):
        index, docs, _vocabulary = indexed_corpus
        term = next(iter(docs[1]))
        before = index.score([term])
        docs[999] = [term, term, "freshterm"]
        index.add_document(999, docs[999])
        after = index.score([term])
        assert after != before
        assert after == naive_score(index, docs, [term])
        assert index.score(["freshterm"]) == naive_score(index, docs, ["freshterm"])
        # idf of an unseen term stays 0 and is not poisoned by the cache
        assert index.idf("never-indexed") == 0.0


class TestMatchingDocuments:
    def test_union_and_intersection_match_reference(self, indexed_corpus):
        index, docs, vocabulary = indexed_corpus
        rng = random.Random(37)
        for _ in range(100):
            query = [rng.choice(vocabulary) for _ in range(rng.randint(1, 4))]
            per_term = [
                {doc_id for doc_id, tokens in docs.items() if term in tokens}
                for term in query
            ]
            union = set().union(*per_term)
            intersection = set.intersection(*per_term)
            assert index.matching_documents(query) == union
            assert index.matching_documents(query, require_all=True) == intersection

    def test_missing_term_short_circuits_intersection(self, indexed_corpus):
        index, _docs, vocabulary = indexed_corpus
        assert index.matching_documents([vocabulary[0], "nosuchterm"], require_all=True) == set()
        assert index.matching_documents(["nosuchterm"]) == set()
        assert index.matching_documents([], require_all=True) == set()
        assert index.matching_documents([]) == set()

    def test_result_sets_are_fresh_copies(self, indexed_corpus):
        index, _docs, vocabulary = indexed_corpus
        first = index.matching_documents([vocabulary[0]])
        first.add(-1)
        assert -1 not in index.matching_documents([vocabulary[0]])
