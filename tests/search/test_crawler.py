"""Tests for the link-following crawler."""

from __future__ import annotations

from repro.search.crawler import Crawler
from repro.search.engine import SOURCE_DEEP_CRAWLED, SOURCE_SURFACE, SearchEngine
from repro.webspace.loadmeter import AGENT_CRAWLER
from repro.webspace.url import Url


class TestCrawl:
    def test_crawl_indexes_surface_pages(self, small_web):
        engine = SearchEngine()
        stats = Crawler(small_web, engine).crawl(max_pages=120)
        assert stats.indexed > 0
        assert stats.fetched >= stats.indexed
        assert engine.count_by_source().get(SOURCE_SURFACE, 0) > 0

    def test_deep_content_not_reached_without_browse_links(self, car_web, car_site):
        engine = SearchEngine()
        Crawler(car_web, engine).crawl(max_pages=50)
        # Only the homepage is reachable: the form results are behind the form.
        assert len(engine.documents_for_host(car_site.host)) == 1

    def test_crawl_discovers_seeded_deep_urls(self, car_web, car_site):
        engine = SearchEngine()
        crawler = Crawler(car_web, engine)
        # Seed the crawler with one surfaced-style results URL: it should then
        # follow pagination and detail links into the site.
        template = car_site.forms[0]
        seed = Url.build(car_site.host, template.action_path, {})
        stats = crawler.crawl(seeds=[seed], max_pages=30)
        assert stats.indexed > 5
        assert engine.count_by_source().get(SOURCE_DEEP_CRAWLED, 0) > 5

    def test_max_pages_respected(self, small_web):
        engine = SearchEngine()
        stats = Crawler(small_web, engine).crawl(max_pages=10)
        assert stats.fetched <= 10

    def test_max_pages_per_host(self, small_web):
        engine = SearchEngine()
        stats = Crawler(small_web, engine).crawl(max_pages=200, max_pages_per_host=3)
        assert all(count <= 3 for count in stats.pages_per_host.values())

    def test_visited_urls_not_refetched(self, car_web, car_site):
        engine = SearchEngine()
        crawler = Crawler(car_web, engine)
        crawler.crawl(max_pages=5)
        before = car_web.load_meter.total(host=car_site.host, agent=AGENT_CRAWLER)
        crawler.crawl(max_pages=5)
        after = car_web.load_meter.total(host=car_site.host, agent=AGENT_CRAWLER)
        assert after == before, "second crawl must skip already-visited homepage"

    def test_fetch_and_index_single_url(self, car_web, car_site):
        engine = SearchEngine()
        crawler = Crawler(car_web, engine)
        assert crawler.fetch_and_index(car_site.detail_url(1))
        assert not crawler.fetch_and_index(car_site.detail_url(10**9))
        assert engine.count_by_source().get(SOURCE_DEEP_CRAWLED) == 1

    def test_error_pages_counted(self, car_web, car_site):
        engine = SearchEngine()
        crawler = Crawler(car_web, engine)
        stats = crawler.crawl(seeds=[Url.build(car_site.host, "/missing", {})], max_pages=5)
        assert stats.skipped_errors == 1
        assert stats.indexed == 0
