"""Tests for the search engine (document store + ranking + annotations)."""

from __future__ import annotations

from repro.search.engine import SOURCE_SURFACE, SOURCE_SURFACED, SearchEngine
from repro.webspace.page import WebPage


def page(url: str, title: str, body: str) -> WebPage:
    html = f"<html><head><title>{title}</title></head><body><p>{body}</p></body></html>"
    return WebPage(url=url, html=html)


def build_engine() -> SearchEngine:
    engine = SearchEngine()
    engine.add_page(page("http://cars.com/1", "Used Toyota Camry", "2003 toyota camry austin texas"))
    engine.add_page(page("http://cars.com/2", "Used Honda Civic", "honda civic dallas"))
    engine.add_page(
        page("http://gov.com/doc", "Water quality report", "regulation water quality texas"),
        source=SOURCE_SURFACED,
        annotations={"domain": "government", "topic": "water quality"},
    )
    return engine


class TestIngestion:
    def test_add_and_count(self):
        engine = build_engine()
        assert len(engine) == 3
        assert "http://cars.com/1" in engine

    def test_error_pages_not_indexed(self, empty_engine):
        assert empty_engine.add_page(WebPage(url="u", html="x", status=404)) is None
        assert len(empty_engine) == 0

    def test_duplicate_url_returns_same_doc_id(self, empty_engine):
        first = empty_engine.add_page(page("http://a.com/", "T", "body"))
        second = empty_engine.add_page(page("http://a.com/", "T", "body"))
        assert first == second
        assert len(empty_engine) == 1

    def test_document_metadata(self):
        engine = build_engine()
        doc = engine.document_for_url("http://gov.com/doc")
        assert doc.host == "gov.com"
        assert doc.source == SOURCE_SURFACED
        assert doc.is_deep_web
        assert doc.annotations["domain"] == "government"

    def test_count_by_source(self):
        counts = build_engine().count_by_source()
        assert counts == {SOURCE_SURFACE: 2, SOURCE_SURFACED: 1}

    def test_count_by_source_ordering_is_sorted_regardless_of_ingestion(self):
        # Ingest in reverse-alphabetical source order; the rendering order
        # must still be sorted by source tag (backed by store stats), so
        # reports are deterministic across ingestion interleavings.
        engine = SearchEngine()
        engine.add_page(page("http://s.com/1", "S", "body"), source="zeta")
        engine.add_page(page("http://s.com/2", "S", "body"), source="alpha")
        engine.add_page(page("http://s.com/3", "S", "body"), source="mid")
        assert list(engine.count_by_source()) == ["alpha", "mid", "zeta"]
        assert list(engine.store_stats().by_source) == ["alpha", "mid", "zeta"]

    def test_documents_filter_by_source_and_host(self):
        engine = build_engine()
        assert len(engine.documents(source=SOURCE_SURFACED)) == 1
        assert len(engine.documents_for_host("cars.com")) == 2


class TestSearch:
    def test_relevant_result_first(self):
        engine = build_engine()
        results = engine.search("toyota camry austin")
        assert results[0].url == "http://cars.com/1"

    def test_k_limits_results(self):
        assert len(build_engine().search("used", k=1)) == 1

    def test_no_results(self):
        assert build_engine().search("zzqx") == []

    def test_search_hosts(self):
        hosts = build_engine().search_hosts("texas")
        assert "cars.com" in hosts or "gov.com" in hosts

    def test_annotations_are_searchable(self):
        engine = build_engine()
        results = engine.search("government water")
        assert results and results[0].host == "gov.com"

    def test_matching_documents_require_all(self):
        engine = build_engine()
        docs = engine.matching_documents("toyota camry", require_all=True)
        assert [doc.url for doc in docs] == ["http://cars.com/1"]

    def test_site_term_frequencies(self):
        frequencies = build_engine().site_term_frequencies("cars.com")
        assert frequencies["toyota"] == 2  # title + body of the Camry page
        assert frequencies["civic"] == 2
        # Stopwords (including domain-generic words like "used") are dropped.
        assert "used" not in frequencies
        assert "the" not in frequencies
