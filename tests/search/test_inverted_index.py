"""Tests for the BM25 inverted index."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.search.inverted_index import InvertedIndex
from repro.util.text import tokenize


def build_index() -> InvertedIndex:
    index = InvertedIndex()
    documents = {
        1: "used toyota camry for sale in austin texas",
        2: "used honda civic excellent condition",
        3: "toyota prius hybrid low mileage",
        4: "apartment for rent in austin downtown",
        5: "government regulation on water quality in texas",
    }
    for doc_id, text in documents.items():
        index.add_document(doc_id, tokenize(text))
    return index


class TestConstruction:
    def test_document_count_and_membership(self):
        index = build_index()
        assert index.document_count() == len(index) == 5
        assert 3 in index
        assert 99 not in index

    def test_duplicate_document_rejected(self):
        index = build_index()
        with pytest.raises(ValueError):
            index.add_document(1, ["again"])

    def test_vocabulary_and_average_length(self):
        index = build_index()
        assert index.vocabulary_size > 10
        assert index.average_length() > 0

    def test_empty_index(self):
        index = InvertedIndex()
        assert index.average_length() == 0.0
        assert index.score(["anything"]) == []


class TestStatistics:
    def test_document_frequency(self):
        index = build_index()
        assert index.document_frequency("toyota") == 2
        assert index.document_frequency("missing") == 0

    def test_idf_rarer_terms_score_higher(self):
        index = build_index()
        assert index.idf("camry") > index.idf("in")

    def test_idf_never_negative(self):
        index = build_index()
        for term in ("in", "used", "toyota", "for"):
            assert index.idf(term) >= 0.0


class TestScoring:
    def test_relevant_document_ranks_first(self):
        index = build_index()
        ranked = index.score(tokenize("toyota camry austin"))
        assert ranked[0][0] == 1

    def test_limit(self):
        index = build_index()
        assert len(index.score(tokenize("used toyota"), limit=1)) == 1

    def test_scores_descending(self):
        index = build_index()
        scores = [score for _, score in index.score(tokenize("used toyota austin"))]
        assert scores == sorted(scores, reverse=True)

    def test_no_match(self):
        assert build_index().score(tokenize("zzqx")) == []

    def test_deterministic_tie_break(self):
        index = InvertedIndex()
        index.add_document(2, ["apple"])
        index.add_document(1, ["apple"])
        ranked = index.score(["apple"])
        assert [doc_id for doc_id, _ in ranked] == [1, 2]


class TestMatchingDocuments:
    def test_any_vs_all(self):
        index = build_index()
        any_match = index.matching_documents(tokenize("toyota austin"))
        all_match = index.matching_documents(tokenize("toyota austin"), require_all=True)
        assert all_match == {1}
        assert any_match >= {1, 3, 4}

    def test_empty_query(self):
        assert build_index().matching_documents([]) == set()


class TestProperties:
    @given(
        st.lists(
            st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]), min_size=1, max_size=6),
            min_size=1,
            max_size=8,
        )
    )
    def test_scores_are_positive_and_cover_matching_docs(self, documents):
        index = InvertedIndex()
        for doc_id, tokens in enumerate(documents):
            index.add_document(doc_id, tokens)
        ranked = index.score(["alpha"])
        expected = {doc_id for doc_id, tokens in enumerate(documents) if "alpha" in tokens}
        assert {doc_id for doc_id, _ in ranked} == expected
        assert all(score > 0 for _, score in ranked)
