"""Tests for the power-law query-log generator."""

from __future__ import annotations

from repro.search.querylog import (
    KIND_HEAD,
    KIND_TAIL,
    QueryLog,
    QueryLogConfig,
    QueryLogGenerator,
    Query,
    expand_to_stream,
)
from repro.util.rng import SeededRng
from repro.util.zipf import fit_power_law, tail_mass


def make_log(small_web, volume: int = 5000) -> QueryLog:
    generator = QueryLogGenerator(small_web, SeededRng(99))
    return generator.generate(QueryLogConfig(total_volume=volume))


class TestPopulation:
    def test_head_queries_reference_surface_topics(self, small_web):
        generator = QueryLogGenerator(small_web, SeededRng(1))
        head = generator.head_population(QueryLogConfig())
        assert head
        surface_hosts = {site.host for site in small_web.surface_sites()}
        assert all(query.target_host in surface_hosts for query in head)
        assert all(query.kind == KIND_HEAD for query in head)

    def test_tail_queries_reference_deep_records(self, small_web):
        generator = QueryLogGenerator(small_web, SeededRng(1))
        tail = generator.tail_population(QueryLogConfig())
        assert tail
        deep_hosts = {site.host for site in small_web.deep_sites()}
        for query in tail[:50]:
            assert query.kind == KIND_TAIL
            assert query.target_host in deep_hosts
            assert query.target_record_id is not None
            assert query.text.strip()

    def test_tail_query_text_matches_record_content(self, small_web):
        generator = QueryLogGenerator(small_web, SeededRng(1))
        tail = generator.tail_population(QueryLogConfig())
        query = tail[0]
        site = small_web.site(query.target_host)
        row = site.database.table(query.target_table).get(query.target_record_id)
        row_text = " ".join(str(value).lower() for value in row.values())
        assert any(token in row_text for token in query.text.split())


class TestGeneratedLog:
    def test_total_volume_matches_config(self, small_web):
        log = make_log(small_web, volume=3000)
        assert log.total_volume == 3000

    def test_ranks_are_contiguous(self, small_web):
        log = make_log(small_web)
        ranks = sorted(query.rank for query in log)
        assert ranks == list(range(1, len(log) + 1))

    def test_frequencies_follow_power_law(self, small_web):
        log = make_log(small_web, volume=20000)
        frequencies = [freq for freq in log.frequencies() if freq > 0]
        fit = fit_power_law(frequencies)
        assert fit.exponent > 0.4
        assert fit.r_squared > 0.6

    def test_tail_carries_substantial_volume(self, small_web):
        log = make_log(small_web, volume=20000)
        assert tail_mass(log.frequencies(), head_size=20) > 0.2

    def test_head_ranks_are_mostly_head_queries(self, small_web):
        log = make_log(small_web)
        top = log.head(10)
        head_share = sum(1 for query in top if query.kind == KIND_HEAD) / len(top)
        assert head_share >= 0.5

    def test_by_kind_partitions_log(self, small_web):
        log = make_log(small_web)
        assert len(log.by_kind(KIND_HEAD)) + len(log.by_kind(KIND_TAIL)) == len(log)

    def test_head_tail_accessors(self, small_web):
        log = make_log(small_web)
        assert len(log.head(5)) == 5
        assert len(log.tail(5)) == len(log) - 5

    def test_generation_is_deterministic(self, small_web):
        first = QueryLogGenerator(small_web, SeededRng(7)).generate(QueryLogConfig(total_volume=1000))
        second = QueryLogGenerator(small_web, SeededRng(7)).generate(QueryLogConfig(total_volume=1000))
        assert [(q.text, q.frequency) for q in first] == [(q.text, q.frequency) for q in second]

    def test_empty_web_gives_empty_log(self):
        from repro.webspace.web import Web

        log = QueryLogGenerator(Web(), SeededRng(1)).generate(QueryLogConfig(total_volume=100))
        assert len(log) == 0
        assert log.total_volume == 0


class TestStreamExpansion:
    def test_expansion_matches_frequencies(self):
        log = QueryLog(
            [
                Query(text="a", kind=KIND_HEAD, frequency=3, rank=1),
                Query(text="b", kind=KIND_TAIL, frequency=1, rank=2),
            ]
        )
        stream = list(expand_to_stream(log))
        assert len(stream) == 4
        assert sum(1 for query in stream if query.text == "a") == 3


class TestLogBoundaries:
    """Boundary behavior of the QueryLog views."""

    def _log(self) -> QueryLog:
        queries = [
            Query(text="alpha", kind=KIND_HEAD, frequency=10, rank=1),
            Query(text="bravo", kind=KIND_TAIL, frequency=5, rank=2),
            Query(text="charlie", kind=KIND_TAIL, frequency=1, rank=3),
        ]
        return QueryLog(queries)

    def test_head_zero_is_empty(self):
        assert self._log().head(0) == []

    def test_head_beyond_length_returns_everything(self):
        log = self._log()
        assert [q.text for q in log.head(99)] == ["alpha", "bravo", "charlie"]

    def test_tail_skip_equal_to_length_is_empty(self):
        log = self._log()
        assert log.tail(len(log)) == []

    def test_tail_skip_beyond_length_is_empty(self):
        assert self._log().tail(100) == []

    def test_tail_zero_returns_everything_in_rank_order(self):
        log = self._log()
        assert [q.text for q in log.tail(0)] == ["alpha", "bravo", "charlie"]

    def test_by_kind_unknown_kind_is_empty(self):
        assert self._log().by_kind("no-such-kind") == []

    def test_by_kind_known_kinds(self):
        log = self._log()
        assert [q.text for q in log.by_kind(KIND_HEAD)] == ["alpha"]
        assert [q.text for q in log.by_kind(KIND_TAIL)] == ["bravo", "charlie"]

    def test_empty_log_boundaries(self):
        empty = QueryLog([])
        assert empty.head(0) == []
        assert empty.head(5) == []
        assert empty.tail(0) == []
        assert empty.tail(5) == []
        assert empty.by_kind(KIND_HEAD) == []
        assert empty.total_volume == 0
