"""QueryResultCache: LRU + TTL + generation invalidation semantics."""

from __future__ import annotations

import pytest

from repro.search.engine import SearchResult
from repro.serve.cache import QueryResultCache, normalize_query


def result(doc_id: int, score: float = 1.0) -> SearchResult:
    return SearchResult(
        doc_id=doc_id,
        url=f"http://host/{doc_id}",
        host="host",
        title=f"doc {doc_id}",
        score=score,
        source="surface",
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNormalizeQuery:
    def test_case_whitespace_punctuation_fold_to_one_key(self):
        assert normalize_query("Red  TOYOTA, Camry!") == normalize_query("red toyota camry")

    def test_distinct_queries_stay_distinct(self):
        assert normalize_query("red toyota") != normalize_query("blue toyota")


class TestLru:
    def test_hit_returns_stored_ranking(self):
        cache = QueryResultCache(max_entries=4)
        ranking = (result(1, 2.0), result(2, 1.0))
        cache.put("q", 10, ranking)
        assert cache.get("q", 10) == ranking
        assert cache.hits == 1 and cache.misses == 0

    def test_same_query_different_k_are_different_entries(self):
        cache = QueryResultCache(max_entries=4)
        cache.put("q", 10, (result(1),))
        assert cache.get("q", 5) is None
        assert cache.get("q", 10) is not None

    def test_least_recently_used_entry_is_evicted(self):
        cache = QueryResultCache(max_entries=2)
        cache.put("a", 10, (result(1),))
        cache.put("b", 10, (result(2),))
        assert cache.get("a", 10) is not None  # refresh "a"
        cache.put("c", 10, (result(3),))  # evicts "b"
        assert cache.get("b", 10) is None
        assert cache.get("a", 10) is not None
        assert cache.get("c", 10) is not None
        assert cache.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = QueryResultCache(max_entries=0)
        cache.put("q", 10, (result(1),))
        assert len(cache) == 0
        assert cache.get("q", 10) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(max_entries=-1)


class TestTtl:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = QueryResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("q", 10, (result(1),))
        clock.advance(9.9)
        assert cache.get("q", 10) is not None
        clock.advance(0.2)
        assert cache.get("q", 10) is None
        assert cache.expirations == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = QueryResultCache(max_entries=4, ttl_seconds=None, clock=clock)
        cache.put("q", 10, (result(1),))
        clock.advance(1e9)
        assert cache.get("q", 10) is not None

    def test_non_positive_ttl_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(ttl_seconds=0.0)


class TestGenerationInvalidation:
    def test_bump_invalidates_every_entry(self):
        cache = QueryResultCache(max_entries=4)
        cache.put("a", 10, (result(1),))
        cache.put("b", 10, (result(2),))
        cache.bump_generation()
        assert cache.get("a", 10) is None
        assert cache.get("b", 10) is None
        assert cache.invalidations == 2

    def test_fresh_entry_after_bump_is_served(self):
        cache = QueryResultCache(max_entries=4)
        cache.put("a", 10, (result(1),))
        cache.bump_generation()
        cache.put("a", 10, (result(1), result(2)))
        assert cache.get("a", 10) == (result(1), result(2))

    def test_put_with_pre_search_generation_is_born_stale(self):
        """A ranking computed before a write raced in must not be served:
        the caller passes the generation it observed before searching."""
        cache = QueryResultCache(max_entries=4)
        observed = cache.generation
        cache.bump_generation()  # a write lands while the search runs
        cache.put("q", 10, (result(1),), generation=observed)
        assert cache.get("q", 10) is None

    def test_stats_rendering_is_deterministic(self):
        cache = QueryResultCache(max_entries=4)
        cache.put("a", 10, (result(1),))
        cache.get("a", 10)
        cache.get("zzz", 10)
        stats = cache.stats()
        assert list(stats) == sorted(stats)
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
