"""QueryFrontend behavior: serving, admission control, shedding, stats."""

from __future__ import annotations

import threading

import pytest

from repro.search.engine import SearchEngine
from repro.serve.frontend import QueryFrontend, ServeStats
from repro.store.records import IngestRecord
from repro.util.text import tokenize


def record(doc_id: int, text: str) -> IngestRecord:
    return IngestRecord(
        url=f"http://site.example.com/{doc_id}",
        host="site.example.com",
        title=f"doc {doc_id}",
        text=text,
        tokens=tokenize(text),
        source="surface",
    )


@pytest.fixture
def engine() -> SearchEngine:
    engine = SearchEngine()
    engine.ingest_records(
        [
            record(1, "red toyota camry excellent condition"),
            record(2, "blue honda civic low mileage"),
            record(3, "red ford mustang convertible"),
            record(4, "toyota corolla reliable commuter"),
        ]
    )
    return engine


class TestServe:
    def test_serve_matches_engine_search(self, engine):
        with QueryFrontend(engine, workers=2) as frontend:
            assert frontend.serve("red toyota", k=3) == engine.search("red toyota", k=3)

    def test_second_serve_is_a_cache_hit_with_identical_results(self, engine):
        with QueryFrontend(engine, workers=2) as frontend:
            first = frontend.serve("toyota", k=2)
            second = frontend.serve("Toyota!", k=2)  # normalizes to the same key
            assert second == first
            assert frontend.cache.hits == 1

    def test_ingest_invalidates_cache_before_next_query(self, engine):
        with QueryFrontend(engine, workers=2) as frontend:
            stale = frontend.serve("toyota", k=10)
            engine.ingest_records([record(5, "toyota tacoma pickup truck")])
            fresh = frontend.serve("toyota", k=10)
            assert fresh == engine.search("toyota", k=10)
            assert len(fresh) == len(stale) + 1
            assert frontend.cache.hits == 0  # the stale entry was never re-served

    def test_constructor_validation(self, engine):
        with pytest.raises(ValueError):
            QueryFrontend(engine, workers=0)
        with pytest.raises(ValueError):
            QueryFrontend(engine, queue_limit=0)

    def test_closed_frontend_rejects_submissions_and_serves(self, engine):
        """After close() the listener is gone, so serving from the cache
        could go stale undetected -- every request must be refused."""
        frontend = QueryFrontend(engine, workers=1)
        frontend.serve("toyota", k=2)
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.submit("toyota")
        with pytest.raises(RuntimeError):
            frontend.serve("toyota", k=2)
        assert len(frontend.cache) == 0

    def test_ttl_uses_the_injected_clock(self, engine):
        now = [0.0]
        frontend = QueryFrontend(
            engine, workers=1, ttl_seconds=10.0, clock=lambda: now[0]
        )
        try:
            first = frontend.serve("toyota", k=2)
            now[0] += 11.0
            assert frontend.serve("toyota", k=2) == first
            assert frontend.cache.expirations == 1, (
                "the entry must expire on the injected clock, not wall time"
            )
        finally:
            frontend.close()

    def test_close_unsubscribes_from_the_ingestor(self, engine):
        frontend = QueryFrontend(engine, workers=1)
        frontend.serve("toyota", k=2)
        frontend.close()
        generation = frontend.cache.generation
        engine.ingest_records([record(6, "toyota yaris hatchback")])
        assert frontend.cache.generation == generation, (
            "a closed frontend must not stay subscribed to ingests"
        )

    def test_latency_history_is_bounded(self, engine):
        with QueryFrontend(engine, workers=1, latency_window=5) as frontend:
            for _ in range(20):
                frontend.serve("toyota", k=2)
            stats = frontend.stats()
            assert stats.served == 20
            assert len(frontend._latencies) == 5
            assert stats.latency_p99 >= 0.0
        with pytest.raises(ValueError):
            QueryFrontend(engine, latency_window=0)


class TestAdmissionControl:
    def test_submit_sheds_when_queue_is_full(self, engine):
        """With one worker blocked and every queue slot held, the next
        submission must be refused, deterministically."""
        release = threading.Event()
        entered = threading.Event()

        class BlockingEngine:
            ingestor = engine.ingestor

            def search(self, query, k=10):
                entered.set()
                release.wait(timeout=10)
                return engine.search(query, k=k)

        frontend = QueryFrontend(BlockingEngine(), workers=1, queue_limit=2)
        try:
            first = frontend.submit("toyota", k=2)  # occupies the worker
            assert first is not None
            assert entered.wait(timeout=10)
            second = frontend.submit("honda", k=2)  # occupies the last slot
            assert second is not None
            shed = frontend.submit("ford", k=2)  # queue full -> shed
            assert shed is None
            assert frontend.stats().shed == 1
            release.set()
            assert first.result(timeout=10) == engine.search("toyota", k=2)
            assert second.result(timeout=10) == engine.search("honda", k=2)
        finally:
            release.set()
            frontend.close()

    def test_slots_are_released_after_completion(self, engine):
        with QueryFrontend(engine, workers=2, queue_limit=2) as frontend:
            for _ in range(10):  # far more requests than slots, sequentially
                future = frontend.submit("toyota", k=2)
                assert future is not None
                future.result(timeout=10)
            assert frontend.stats().shed == 0

    def test_blocking_workload_never_sheds(self, engine):
        with QueryFrontend(engine, workers=2, queue_limit=1) as frontend:
            outcome = frontend.serve_workload(["toyota"] * 50, default_k=2)
            assert outcome.stats.shed == 0
            assert outcome.stats.served == 50
            assert all(result is not None for result in outcome.results)


class TestStats:
    def test_workload_stats_count_hits_and_percentiles(self, engine):
        # One worker: with 2+, the two "toyota" requests could both miss
        # before either populates the cache, making hit counts racy.
        with QueryFrontend(engine, workers=1) as frontend:
            outcome = frontend.serve_workload(["toyota", "toyota", "honda"], default_k=2)
        stats = outcome.stats
        assert stats.served == 3
        assert stats.cache_hits == 1 and stats.cache_misses == 2
        assert stats.cache_hit_rate == pytest.approx(1 / 3)
        assert 0 <= stats.latency_p50 <= stats.latency_p90 <= stats.latency_p99
        assert stats.latency_max >= stats.latency_p99
        assert stats.qps > 0

    def test_stats_rendering_mentions_the_load_story(self, engine):
        with QueryFrontend(engine, workers=2) as frontend:
            frontend.serve("toyota")
            rendered = str(frontend.stats())
        assert "served: 1" in rendered
        assert "hit rate" in rendered

    def test_empty_stats_are_all_zero(self):
        stats = ServeStats.from_counters(0, 0, 0, 0, [])
        assert stats.cache_hit_rate == 0.0
        assert stats.latency_p99 == 0.0
        assert stats.qps == 0.0
