"""Regression tests for the frontend's concurrency bugs (PR 9).

Each test pins one fixed bug and fails on the pre-fix code:

* lazy pool creation raced outside the lock (two first-submitters each
  built a ThreadPoolExecutor; one leaked unshutdown);
* ``serve_workload`` computed its stats from frontend-global counter
  deltas, so concurrent direct ``serve()`` traffic polluted a workload's
  reported served/hit-rate;
* the first ``future.result()`` that raised propagated immediately,
  abandoning the remaining futures ungathered.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.serve.frontend as frontend_module
from repro.search.engine import SearchEngine
from repro.serve.frontend import QueryFrontend
from repro.store.records import IngestRecord
from repro.util.text import tokenize


def record(doc_id: int, text: str) -> IngestRecord:
    return IngestRecord(
        url=f"http://site.example.com/{doc_id}",
        host="site.example.com",
        title=f"doc {doc_id}",
        text=text,
        tokens=tokenize(text),
        source="surface",
    )


@pytest.fixture
def engine() -> SearchEngine:
    engine = SearchEngine()
    engine.ingest_records(
        [
            record(1, "red toyota camry excellent condition"),
            record(2, "blue honda civic low mileage"),
            record(3, "red ford mustang convertible"),
            record(4, "toyota corolla reliable commuter"),
        ]
    )
    return engine


class TestLazyPoolCreationRace:
    def test_racing_first_submits_build_exactly_one_pool(self, engine, monkeypatch):
        """Many threads racing the first submit must share one pool.

        The instrumented executor stalls inside ``__init__`` to hold the
        ``_pool is None`` window wide open: without the lock around lazy
        creation, several racers construct a pool each and all but the
        last-assigned one leak unshutdown.
        """
        built: list[frontend_module.ThreadPoolExecutor] = []
        build_lock = threading.Lock()
        real_executor = frontend_module.ThreadPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                with build_lock:
                    built.append(self)
                time.sleep(0.05)  # widen the race window deterministically
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(frontend_module, "ThreadPoolExecutor", CountingExecutor)
        frontend = QueryFrontend(engine, workers=2, queue_limit=64)
        expected = engine.search("toyota", k=2)
        racers = 16
        barrier = threading.Barrier(racers)
        futures: list[object] = []
        futures_lock = threading.Lock()

        def first_submit() -> None:
            barrier.wait(timeout=10)
            future = frontend.submit("toyota", k=2)
            with futures_lock:
                futures.append(future)

        threads = [threading.Thread(target=first_submit) for _ in range(racers)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert len(built) == 1, (
                f"{len(built)} thread pools were constructed by racing first "
                "submits; lazy creation must be serialized under the lock"
            )
            for future in futures:
                assert future is not None
                assert future.result(timeout=10) == expected
        finally:
            frontend.close()
            for pool in built:  # pre-fix leftovers must not leak threads
                pool.shutdown(wait=False)


class TestWorkloadLocalStats:
    def test_background_serves_do_not_pollute_workload_stats(self, engine):
        """A workload's stats must count only the workload's own requests.

        While the replay is in flight a background thread serves directly
        through the same frontend (one miss + one hit).  Pre-fix the
        workload stats were deltas of the frontend-global counters, so
        those background requests inflated served and the hit rate.
        """
        entered_trigger = threading.Event()
        background_done = threading.Event()

        class InterleavingEngine:
            ingestor = engine.ingestor

            def search(self, query, k=10):
                if query == "trigger":
                    entered_trigger.set()
                    assert background_done.wait(timeout=10)
                return engine.search(query, k=k)

        frontend = QueryFrontend(InterleavingEngine(), workers=1)

        def background_traffic() -> None:
            assert entered_trigger.wait(timeout=10)
            frontend.serve("background noise", k=2)  # miss
            frontend.serve("background noise", k=2)  # hit
            background_done.set()

        thread = threading.Thread(target=background_traffic)
        thread.start()
        try:
            outcome = frontend.serve_workload(
                ["trigger", "red camry", "blue civic"], default_k=2
            )
        finally:
            thread.join(timeout=10)
            frontend.close()
        stats = outcome.stats
        assert stats.served == 3, "background serves leaked into workload stats"
        assert stats.cache_misses == 3
        assert stats.cache_hits == 0, "background cache hit leaked into workload stats"
        assert stats.shed == 0
        # The frontend-global counters still see all five requests.
        assert frontend._served == 5

    def test_workload_sheds_are_counted_locally(self, engine):
        """Shed counts come from the workload's own refused admissions."""
        release = threading.Event()
        entered = threading.Event()

        class BlockingEngine:
            ingestor = engine.ingestor

            def search(self, query, k=10):
                entered.set()
                release.wait(timeout=10)
                return engine.search(query, k=k)

        frontend = QueryFrontend(BlockingEngine(), workers=1, queue_limit=2)
        try:
            # Inflate the global shed counter before the workload runs.
            blocked = frontend.submit("toyota", k=2)
            assert blocked is not None and entered.wait(timeout=10)
            queued = frontend.submit("corolla", k=2)  # occupies the last slot
            assert queued is not None
            assert frontend.submit("honda", k=2) is None  # global shed += 1
            release.set()
            assert blocked.result(timeout=10) is not None
            assert queued.result(timeout=10) is not None
            outcome = frontend.serve_workload(
                ["red camry", "blue civic"], default_k=2, shed_on_overload=True
            )
            assert outcome.stats.shed == 0, (
                "pre-workload sheds must not leak into the workload's stats"
            )
            assert frontend.stats().shed == 1
        finally:
            release.set()
            frontend.close()


class TestWorkloadGathersAllFutures:
    def test_failure_mid_workload_gathers_every_future_then_reraises(self, engine):
        """One raising request must not abandon the rest of the replay.

        With one worker, the stream is ``first`` (gated), ``boom``
        (raises), ``last`` (gated).  Pre-fix, ``serve_workload`` raised as
        soon as it consumed ``boom``'s future -- while ``last`` was still
        in flight.  Post-fix it gathers every outcome first and re-raises
        once, so no future is left ungathered and every admission slot has
        drained by the time the caller sees the error.
        """
        release_first = threading.Event()
        release_last = threading.Event()
        entered_first = threading.Event()
        entered_last = threading.Event()

        class GatedEngine:
            ingestor = engine.ingestor

            def search(self, query, k=10):
                if query == "first":
                    entered_first.set()
                    assert release_first.wait(timeout=10)
                elif query == "boom":
                    raise ValueError("boom")
                elif query == "last":
                    entered_last.set()
                    assert release_last.wait(timeout=10)
                return engine.search(query, k=k)

        frontend = QueryFrontend(GatedEngine(), workers=1, queue_limit=4)
        finished = threading.Event()
        caught: list[BaseException] = []

        def run_workload() -> None:
            try:
                frontend.serve_workload(["first", "boom", "last"], default_k=2)
            except BaseException as error:
                caught.append(error)
            finally:
                finished.set()

        thread = threading.Thread(target=run_workload)
        thread.start()
        try:
            assert entered_first.wait(timeout=10)
            release_first.set()
            # The worker consumes "boom" (its future now holds the error)
            # and moves on to "last", which blocks on its gate.
            assert entered_last.wait(timeout=10)
            assert not finished.wait(timeout=0.5), (
                "serve_workload raised while a request was still in flight; "
                "it must gather every future before re-raising"
            )
            release_last.set()
            assert finished.wait(timeout=10)
        finally:
            release_first.set()
            release_last.set()
            thread.join(timeout=10)
        assert len(caught) == 1 and isinstance(caught[0], ValueError)
        assert str(caught[0]) == "boom"
        # Every admission slot drained (done-callbacks may trail result()
        # by an instant, so poll briefly before judging).
        deadline = time.time() + 5.0
        while time.time() < deadline:
            held = 0
            for _ in range(frontend.queue_limit):
                if frontend._slots.acquire(blocking=False):
                    held += 1
                else:
                    break
            for _ in range(held):
                frontend._slots.release()
            if held == frontend.queue_limit:
                break
        else:
            pytest.fail("admission slots were leaked by the failed workload")
        frontend.close()
