"""Serving equivalence: the frontend is byte-identical to the plain engine.

Three claims over the same seeded Zipf workload:

* **cached == uncached**: a frontend with a result cache returns exactly
  what a cache-disabled frontend returns, entry for entry;
* **concurrent == serial**: eight workers replaying the workload produce
  the same rankings (scores included) as direct, serial
  ``engine.search`` calls;
* **post-invalidation**: after a mid-workload ingest the frontend serves
  the *new* corpus's rankings, identical to direct search -- never a
  stale cached list.
"""

from __future__ import annotations

import pytest

from repro.api import DeepWebService
from repro.core.surfacer import SurfacingConfig
from repro.serve.frontend import QueryFrontend
from repro.serve.loadgen import WorkloadGenerator
from repro.store.records import IngestRecord
from repro.util.text import tokenize
from repro.webspace.sitegen import WebConfig


@pytest.fixture(scope="module")
def served_service() -> DeepWebService:
    """A small crawled + surfaced world (module-scoped; tests may ingest
    *additional* documents but must not rely on a pristine index)."""
    service = (
        DeepWebService.build()
        .web(WebConfig(total_deep_sites=3, surface_site_count=2, max_records=50, seed=23))
        .surfacing(SurfacingConfig(max_urls_per_form=50))
        .create()
    )
    service.crawl(max_pages=120)
    service.surface()
    return service


def workload_for(service: DeepWebService, count: int, seed: str):
    stream = WorkloadGenerator(service.web, seed=seed).stream(count, k=10)
    assert len(stream) == count
    assert len({query.text for query in stream}) < count, "Zipf stream should repeat"
    return stream


def direct_results(service: DeepWebService, workload):
    return [service.engine.search(query.text, k=query.k) for query in workload]


class TestCachedVsUncachedVsConcurrent:
    def test_cached_equals_uncached_equals_direct(self, served_service):
        workload = workload_for(served_service, 300, seed="equiv")
        expected = direct_results(served_service, workload)

        with QueryFrontend(served_service.engine, workers=1, cache_size=0) as uncached:
            uncached_outcome = uncached.serve_workload(workload)
        with QueryFrontend(served_service.engine, workers=1, cache_size=512) as cached:
            cached_outcome = cached.serve_workload(workload)

        assert uncached_outcome.results == expected
        assert cached_outcome.results == expected
        assert uncached_outcome.stats.cache_hits == 0
        assert cached_outcome.stats.cache_hits > 0, "Zipf repeats must hit the cache"

    def test_concurrent_eight_workers_equals_direct(self, served_service):
        workload = workload_for(served_service, 300, seed="equiv")
        expected = direct_results(served_service, workload)
        with QueryFrontend(served_service.engine, workers=8, cache_size=512) as frontend:
            outcome = frontend.serve_workload(workload)
        assert outcome.results == expected
        assert outcome.stats.shed == 0

    def test_concurrent_equals_concurrent_replay(self, served_service):
        """Two concurrent replays of the same stream are identical to each
        other (thread scheduling cannot leak into results)."""
        workload = workload_for(served_service, 200, seed="replay")
        with QueryFrontend(served_service.engine, workers=8, cache_size=512) as first:
            one = first.serve_workload(workload).results
        with QueryFrontend(served_service.engine, workers=8, cache_size=512) as second:
            two = second.serve_workload(workload).results
        assert one == two


class TestFacadeLifecycle:
    def test_facade_replaces_a_closed_frontend(self, served_service):
        """``with service.frontend: ...`` must not wedge the serving path:
        the property hands out a fresh frontend after a close."""
        with served_service.frontend as first:
            first.serve("toyota", k=3)
        assert first.closed
        second = served_service.frontend
        assert second is not first and not second.closed
        assert second.serve("toyota", k=3) == served_service.engine.search("toyota", k=3)
        second.close()


class TestInvalidationEquivalence:
    def _fresh_records(self, tag: str) -> list[IngestRecord]:
        texts = [
            f"{tag} surfaced toyota camry special listing",
            f"{tag} surfaced apartment parking downtown",
        ]
        return [
            IngestRecord(
                url=f"http://ingest.{tag}.example.com/{index}",
                host=f"ingest.{tag}.example.com",
                title=f"{tag} {index}",
                text=text,
                tokens=tokenize(text),
                source="surfaced",
            )
            for index, text in enumerate(texts)
        ]

    def test_mid_workload_ingest_serves_fresh_rankings(self, served_service):
        workload = workload_for(served_service, 200, seed="invalidate")
        half = len(workload) // 2
        with QueryFrontend(served_service.engine, workers=8, cache_size=512) as frontend:
            first_expected = direct_results(served_service, workload[:half])
            first = frontend.serve_workload(workload[:half])
            assert first.results == first_expected

            # The write path (any content layer) lands new documents:
            # every cached ranking is now stale.
            served_service.engine.ingest_records(self._fresh_records("midworkload"))

            second_expected = direct_results(served_service, workload[half:])
            second = frontend.serve_workload(workload[half:])
            assert second.results == second_expected

    def test_repeated_query_across_ingest_reflects_new_corpus(self, served_service):
        query = "toyota camry"
        with QueryFrontend(served_service.engine, workers=2, cache_size=64) as frontend:
            before = frontend.serve(query, k=50)
            assert before == served_service.engine.search(query, k=50)
            served_service.engine.ingest_records(self._fresh_records("repeat"))
            after = frontend.serve(query, k=50)
            assert after == served_service.engine.search(query, k=50)
            new_urls = {result.url for result in after} - {result.url for result in before}
            assert any("ingest.repeat" in url for url in new_urls), (
                "the post-ingest ranking must include the new document"
            )
