"""WorkloadGenerator: seeded, replayable Zipf query streams."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.search.querylog import KIND_HEAD, KIND_TAIL
from repro.serve.loadgen import (
    KIND_VOCAB,
    WorkloadConfig,
    WorkloadGenerator,
    vocab_queries,
)
from repro.webspace.web import Web


@pytest.fixture(scope="module")
def generator(small_web) -> WorkloadGenerator:
    return WorkloadGenerator(small_web, seed="loadgen-test")


class TestPopulation:
    def test_population_is_unique_and_rank_ordered(self, generator):
        population = generator.population()
        texts = [query.text for query in population]
        assert len(texts) == len(set(texts))
        assert [query.rank for query in population] == list(range(1, len(population) + 1))

    def test_population_covers_all_three_routes(self, generator):
        kinds = {query.kind for query in generator.population()}
        assert kinds == {KIND_HEAD, KIND_TAIL, KIND_VOCAB}

    def test_vocab_queries_deterministic_and_bounded(self):
        assert vocab_queries(150) == vocab_queries(150)
        assert len(vocab_queries(10)) == 10
        assert vocab_queries(0) == []
        assert "used toyota camry" in vocab_queries(150)

    def test_vocab_route_can_be_disabled(self, small_web):
        config = WorkloadConfig(max_vocab_queries=0)
        generator = WorkloadGenerator(small_web, seed="no-vocab", config=config)
        assert KIND_VOCAB not in {query.kind for query in generator.population()}


class TestStream:
    def test_same_seed_replays_identical_stream(self, small_web):
        first = WorkloadGenerator(small_web, seed="replay").stream(400, k=10)
        second = WorkloadGenerator(small_web, seed="replay").stream(400, k=10)
        assert first == second

    def test_different_seeds_differ(self, small_web):
        first = WorkloadGenerator(small_web, seed="a").stream(400)
        second = WorkloadGenerator(small_web, seed="b").stream(400)
        assert first != second

    def test_stream_is_zipf_shaped(self, generator):
        stream = generator.stream(1000)
        counts = Counter(query.text for query in stream)
        assert len(counts) < 1000, "popular queries must repeat"
        top_share = sum(count for _, count in counts.most_common(10)) / 1000
        assert top_share > 0.15, "the head must carry a disproportionate share"

    def test_k_is_propagated(self, generator):
        assert all(query.k == 25 for query in generator.stream(50, k=25))

    def test_boundaries(self, generator):
        assert generator.stream(0) == []
        with pytest.raises(ValueError):
            generator.stream(-1)

    def test_empty_web_yields_empty_stream(self):
        generator = WorkloadGenerator(
            Web(), seed="empty", config=WorkloadConfig(max_vocab_queries=0)
        )
        assert generator.stream(10) == []
