"""Tests for the mixed-mode workload stream (planner workloads).

The stream interleaves keyword, ``field:value`` structured and
table-lookup queries at configurable ratios, and must replay bit for
bit for a fixed web and seed -- that is what lets the ``planner_qps``
scenario check frontend-served plans against direct executor runs.
"""

from __future__ import annotations

import pytest

from repro.query.parse import parse_query
from repro.serve.loadgen import (
    KIND_STRUCTURED,
    KIND_TABLE,
    WorkloadGenerator,
    structured_queries,
    table_lookup_queries,
)


class TestPopulations:
    def test_structured_queries_are_deterministic_filters(self):
        queries = structured_queries()
        assert queries == structured_queries()
        assert queries
        for text in queries:
            assert parse_query(text).is_structured, text

    def test_table_lookup_queries_are_attribute_runs(self):
        queries = table_lookup_queries()
        assert queries == table_lookup_queries()
        assert queries
        for text in queries:
            parsed = parse_query(text)
            assert parsed.keywords and not parsed.filters, text

    def test_limits_truncate(self):
        assert len(structured_queries(limit=5)) == 5
        assert len(table_lookup_queries(limit=3)) == 3
        assert structured_queries(limit=0) == []


class TestMixedStream:
    def test_same_seed_replays_bit_for_bit(self, small_web):
        one = WorkloadGenerator(small_web, seed="mix").mixed_stream(300)
        two = WorkloadGenerator(small_web, seed="mix").mixed_stream(300)
        assert one == two

    def test_same_generator_continues_instead_of_replaying(self, small_web):
        generator = WorkloadGenerator(small_web, seed="mix")
        first = generator.mixed_stream(150)
        second = generator.mixed_stream(150)
        assert first != second, "consecutive calls must continue the sequence"
        # The continuation is itself deterministic.
        replay = WorkloadGenerator(small_web, seed="mix")
        assert replay.mixed_stream(150) == first
        assert replay.mixed_stream(150) == second

    def test_different_seeds_differ(self, small_web):
        one = WorkloadGenerator(small_web, seed="mix-a").mixed_stream(200)
        two = WorkloadGenerator(small_web, seed="mix-b").mixed_stream(200)
        assert one != two

    def test_all_three_modes_appear(self, small_web):
        stream = WorkloadGenerator(small_web, seed="mix").mixed_stream(400)
        kinds = {query.kind for query in stream}
        assert KIND_STRUCTURED in kinds
        assert KIND_TABLE in kinds
        assert kinds - {KIND_STRUCTURED, KIND_TABLE}, "keyword modes must appear"

    def test_ratios_shift_the_mode_mix(self, small_web):
        generator = WorkloadGenerator(small_web, seed="ratio")
        stream = generator.mixed_stream(300, ratios=(0.0, 1.0, 0.0))
        assert all(query.kind == KIND_STRUCTURED for query in stream)
        only_tables = WorkloadGenerator(small_web, seed="ratio").mixed_stream(
            300, ratios=(0.0, 0.0, 1.0)
        )
        assert all(query.kind == KIND_TABLE for query in only_tables)

    def test_k_is_applied_to_every_request(self, small_web):
        stream = WorkloadGenerator(small_web, seed="mix").mixed_stream(50, k=7)
        assert all(query.k == 7 for query in stream)

    def test_mixed_stream_does_not_disturb_the_plain_stream(self, small_web):
        plain = WorkloadGenerator(small_web, seed="iso").stream(100)
        generator = WorkloadGenerator(small_web, seed="iso")
        generator.mixed_stream(100)
        assert generator.stream(100) == plain

    def test_count_zero_and_validation(self, small_web):
        generator = WorkloadGenerator(small_web, seed="mix")
        assert generator.mixed_stream(0) == []
        with pytest.raises(ValueError):
            generator.mixed_stream(-1)
        with pytest.raises(ValueError):
            generator.mixed_stream(10, ratios=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            generator.mixed_stream(10, ratios=(-1.0, 1.0, 1.0))

    def test_zipf_head_repeats(self, small_web):
        stream = WorkloadGenerator(small_web, seed="mix").mixed_stream(300)
        texts = [query.text for query in stream]
        assert len(set(texts)) < len(texts), "the head of the stream must repeat"
