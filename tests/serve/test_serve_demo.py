"""Smoke coverage for ``scripts/serve_demo.py``."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "serve_demo.py"


def load_demo():
    spec = importlib.util.spec_from_file_location("serve_demo", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_serve_demo_runs_and_reports(capsys):
    demo = load_demo()
    exit_code = demo.main(
        ["--queries", "120", "--workers", "2", "--sites", "1", "--seed", "5"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "served: 120 (0 shed)" in out
    assert "hit rate" in out
    assert "throughput:" in out
    assert "queries with at least one result:" in out
