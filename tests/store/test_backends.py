"""Unit tests for the unified content store (records, ingestor, backends)."""

from __future__ import annotations

import pytest

from repro.store import (
    IngestRecord,
    Ingestor,
    InMemoryBackend,
    ShardedBackend,
    StorageBackend,
)
from repro.store.records import SOURCE_SURFACE, SOURCE_SURFACED, SOURCE_WEBTABLE
from repro.store.sharded import shard_of
from repro.webspace.page import WebPage


def record(url: str, text: str, source: str = SOURCE_SURFACE) -> IngestRecord:
    return IngestRecord(
        url=url,
        host="h.test",
        title="t",
        text=text,
        tokens=text.split(),
        source=source,
    )


def page(url: str, title: str, body: str, status: int = 200) -> WebPage:
    html = f"<html><head><title>{title}</title></head><body><p>{body}</p></body></html>"
    return WebPage(url=url, html=html, status=status)


BACKENDS = [lambda: InMemoryBackend(), lambda: ShardedBackend(4)]


@pytest.mark.parametrize("make_backend", BACKENDS, ids=["memory", "sharded"])
class TestBackendContract:
    def test_satisfies_protocol(self, make_backend):
        assert isinstance(make_backend(), StorageBackend)

    def test_sequential_doc_ids_and_dedup(self, make_backend):
        backend = make_backend()
        assert backend.add(record("u://1", "alpha")) == 1
        assert backend.add(record("u://2", "bravo")) == 2
        assert backend.add(record("u://1", "alpha again")) == 1  # dedup by URL
        assert len(backend) == 2
        assert "u://1" in backend and "u://3" not in backend
        assert backend.doc_id_for_url("u://2") == 2
        assert backend.doc_id_for_url("u://nope") is None

    def test_get_and_document_for_url(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "alpha"))
        doc = backend.get(1)
        assert doc.doc_id == 1 and doc.url == "u://1" and doc.text == "alpha"
        assert backend.document_for_url("u://1").doc_id == 1
        assert backend.document_for_url("u://nope") is None
        with pytest.raises(KeyError):
            backend.get(99)

    def test_documents_are_doc_id_ordered(self, make_backend):
        backend = make_backend()
        for index in range(20):
            backend.add(record(f"u://{index}", f"token{index}"))
        assert [doc.doc_id for doc in backend.documents()] == list(range(1, 21))

    def test_documents_filter_by_source_and_host(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "alpha", source=SOURCE_SURFACED))
        backend.add(record("u://2", "bravo"))
        assert [d.doc_id for d in backend.documents(source=SOURCE_SURFACED)] == [1]
        assert [d.doc_id for d in backend.documents_for_host("h.test")] == [1, 2]
        assert backend.documents_for_host("other.test") == []

    def test_search_and_matching(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "toyota camry austin"))
        backend.add(record("u://2", "honda civic austin"))
        ranked = backend.search(["toyota"])
        assert [doc_id for doc_id, _ in ranked] == [1]
        assert backend.matching_documents(["austin"]) == {1, 2}
        assert backend.matching_documents(["austin", "toyota"], require_all=True) == {1}
        assert backend.search(["nosuchterm"]) == []

    def test_count_by_source_is_sorted(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "x", source="zeta"))
        backend.add(record("u://2", "x", source="alpha"))
        assert list(backend.count_by_source()) == ["alpha", "zeta"]
        stats = backend.stats()
        assert stats.documents == 2
        assert list(stats.by_source) == ["alpha", "zeta"]


class TestShardedSpecifics:
    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedBackend(0)
        with pytest.raises(ValueError):
            ShardedBackend(-3)

    def test_routing_is_stable_and_partitioned(self):
        backend = ShardedBackend(4)
        for index in range(40):
            backend.add(record(f"u://doc/{index}", f"token{index}"))
        stats = backend.stats()
        assert sum(stats.shard_documents) == 40
        assert len(stats.shard_documents) == 4
        # CRC32 routing: same URL always lands on the same shard.
        assert shard_of("u://doc/7", 4) == shard_of("u://doc/7", 4)
        # With 40 distinct URLs, at least two shards must be populated.
        assert sum(1 for count in stats.shard_documents if count) >= 2

    def test_single_shard_degenerates_to_global(self):
        single = ShardedBackend(1)
        memory = InMemoryBackend()
        for index in range(10):
            single.add(record(f"u://{index}", f"alpha token{index}"))
            memory.add(record(f"u://{index}", f"alpha token{index}"))
        assert single.search(["alpha"], limit=5) == memory.search(["alpha"], limit=5)

    def test_empty_store_search(self):
        assert ShardedBackend(4).search(["anything"]) == []
        assert ShardedBackend(4).matching_documents(["x"], require_all=True) == set()


class TestShardedBoundaries:
    """Direct boundary coverage for the sharded backend's own paths.

    These hit ShardedBackend without the engine in front of it: the
    engine tokenizes/normalizes before calling down, so the raw-backend
    behaviour on blank and unknown input was previously only covered
    incidentally by the parametrized contract suite.
    """

    def test_empty_backend_reads_are_empty_not_errors(self):
        backend = ShardedBackend(4)
        assert len(backend) == 0
        assert backend.search([]) == []
        assert backend.search([], limit=5) == []
        assert backend.documents() == []
        assert backend.documents_for_host("h.test") == []
        assert backend.export_records() == []
        assert backend.count_by_source() == {}
        assert backend.stats().shard_documents == (0, 0, 0, 0)

    def test_blank_and_unknown_term_queries(self):
        backend = ShardedBackend(4)
        backend.add(record("u://1", "toyota camry"))
        backend.add(record("u://2", "honda civic"))
        assert backend.search([]) == []
        assert backend.search(["zzz-unknown"]) == []
        # A mixed query scores only the known term; the unknown one
        # contributes nothing rather than poisoning the ranking.
        mixed = backend.search(["toyota", "zzz-unknown"])
        assert [doc_id for doc_id, _ in mixed] == [1]
        assert backend.matching_documents([]) == set()
        assert backend.matching_documents([], require_all=True) == set()

    def test_export_records_round_trip_at_single_shard(self):
        single = ShardedBackend(1)
        for index in range(12):
            single.add(
                record(
                    f"u://doc/{index}",
                    f"alpha shared token{index} token{index}",
                    source="zeta" if index % 3 else "alpha",
                )
            )
        exported = single.export_records()
        assert [rec.url for rec in exported] == [f"u://doc/{i}" for i in range(12)]
        rebuilt = ShardedBackend(1)
        for rec in exported:
            rebuilt.add(rec)
        assert rebuilt.search(["alpha", "shared"], limit=None) == single.search(
            ["alpha", "shared"], limit=None
        )
        assert rebuilt.count_by_source() == single.count_by_source()
        assert [d.doc_id for d in rebuilt.documents()] == list(range(1, 13))

    def test_documents_for_host_ordering_across_shards(self):
        backend = ShardedBackend(4)
        hosts = ("a.test", "b.test")
        for index in range(30):
            rec = IngestRecord(
                url=f"u://mixed/{index}",
                host=hosts[index % 2],
                title="t",
                text=f"token{index}",
                tokens=[f"token{index}"],
                source=SOURCE_SURFACE,
            )
            backend.add(rec)
        for host, parity in zip(hosts, (1, 2)):
            docs = backend.documents_for_host(host)
            # Ascending doc id regardless of which shard holds each doc.
            assert [d.doc_id for d in docs] == list(range(parity, 31, 2))
            assert all(d.host == host for d in docs)


class TestIngestor:
    def test_ingest_page_skips_error_pages(self):
        ingestor = Ingestor(InMemoryBackend())
        assert ingestor.ingest_page(page("u://1", "T", "body", status=404)) is None
        assert len(ingestor.backend) == 0

    def test_ingest_page_dedups_without_reanalysis(self):
        backend = InMemoryBackend()
        ingestor = Ingestor(backend)
        first = ingestor.ingest_page(page("u://1", "T", "toyota"))
        second = ingestor.ingest_page(page("u://1", "T", "toyota"))
        assert first == second == 1
        assert len(backend) == 1

    def test_annotations_become_searchable_tokens(self):
        backend = InMemoryBackend()
        ingestor = Ingestor(backend)
        ingestor.ingest_page(
            page("u://1", "T", "body"), annotations={"domain": "government"}
        )
        assert backend.matching_documents(["government"]) == {1}
        assert backend.get(1).annotations == {"domain": "government"}

    def test_listeners_fire_only_for_new_documents(self):
        ingestor = Ingestor(InMemoryBackend())
        seen: list[tuple[str, int]] = []
        ingestor.add_listener(lambda record, doc_id: seen.append((record.url, doc_id)))
        ingestor.ingest(record("u://1", "alpha"))
        ingestor.ingest(record("u://1", "alpha"))  # duplicate: no event
        ingestor.ingest_batch([record("u://2", "bravo"), record("u://3", "charlie")])
        assert seen == [("u://1", 1), ("u://2", 2), ("u://3", 3)]

    def test_batch_returns_ids_in_order(self):
        ingestor = Ingestor(InMemoryBackend())
        ids = ingestor.ingest_batch(
            [record("u://1", "a"), record("u://2", "b"), record("u://1", "a")]
        )
        assert ids == [1, 2, 1]
