"""Unit tests for the unified content store (records, ingestor, backends)."""

from __future__ import annotations

import pytest

from repro.store import (
    IngestRecord,
    Ingestor,
    InMemoryBackend,
    ShardedBackend,
    StorageBackend,
)
from repro.store.records import SOURCE_SURFACE, SOURCE_SURFACED, SOURCE_WEBTABLE
from repro.store.sharded import shard_of
from repro.webspace.page import WebPage


def record(url: str, text: str, source: str = SOURCE_SURFACE) -> IngestRecord:
    return IngestRecord(
        url=url,
        host="h.test",
        title="t",
        text=text,
        tokens=text.split(),
        source=source,
    )


def page(url: str, title: str, body: str, status: int = 200) -> WebPage:
    html = f"<html><head><title>{title}</title></head><body><p>{body}</p></body></html>"
    return WebPage(url=url, html=html, status=status)


BACKENDS = [lambda: InMemoryBackend(), lambda: ShardedBackend(4)]


@pytest.mark.parametrize("make_backend", BACKENDS, ids=["memory", "sharded"])
class TestBackendContract:
    def test_satisfies_protocol(self, make_backend):
        assert isinstance(make_backend(), StorageBackend)

    def test_sequential_doc_ids_and_dedup(self, make_backend):
        backend = make_backend()
        assert backend.add(record("u://1", "alpha")) == 1
        assert backend.add(record("u://2", "bravo")) == 2
        assert backend.add(record("u://1", "alpha again")) == 1  # dedup by URL
        assert len(backend) == 2
        assert "u://1" in backend and "u://3" not in backend
        assert backend.doc_id_for_url("u://2") == 2
        assert backend.doc_id_for_url("u://nope") is None

    def test_get_and_document_for_url(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "alpha"))
        doc = backend.get(1)
        assert doc.doc_id == 1 and doc.url == "u://1" and doc.text == "alpha"
        assert backend.document_for_url("u://1").doc_id == 1
        assert backend.document_for_url("u://nope") is None
        with pytest.raises(KeyError):
            backend.get(99)

    def test_documents_are_doc_id_ordered(self, make_backend):
        backend = make_backend()
        for index in range(20):
            backend.add(record(f"u://{index}", f"token{index}"))
        assert [doc.doc_id for doc in backend.documents()] == list(range(1, 21))

    def test_documents_filter_by_source_and_host(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "alpha", source=SOURCE_SURFACED))
        backend.add(record("u://2", "bravo"))
        assert [d.doc_id for d in backend.documents(source=SOURCE_SURFACED)] == [1]
        assert [d.doc_id for d in backend.documents_for_host("h.test")] == [1, 2]
        assert backend.documents_for_host("other.test") == []

    def test_search_and_matching(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "toyota camry austin"))
        backend.add(record("u://2", "honda civic austin"))
        ranked = backend.search(["toyota"])
        assert [doc_id for doc_id, _ in ranked] == [1]
        assert backend.matching_documents(["austin"]) == {1, 2}
        assert backend.matching_documents(["austin", "toyota"], require_all=True) == {1}
        assert backend.search(["nosuchterm"]) == []

    def test_count_by_source_is_sorted(self, make_backend):
        backend = make_backend()
        backend.add(record("u://1", "x", source="zeta"))
        backend.add(record("u://2", "x", source="alpha"))
        assert list(backend.count_by_source()) == ["alpha", "zeta"]
        stats = backend.stats()
        assert stats.documents == 2
        assert list(stats.by_source) == ["alpha", "zeta"]


class TestShardedSpecifics:
    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedBackend(0)
        with pytest.raises(ValueError):
            ShardedBackend(-3)

    def test_routing_is_stable_and_partitioned(self):
        backend = ShardedBackend(4)
        for index in range(40):
            backend.add(record(f"u://doc/{index}", f"token{index}"))
        stats = backend.stats()
        assert sum(stats.shard_documents) == 40
        assert len(stats.shard_documents) == 4
        # CRC32 routing: same URL always lands on the same shard.
        assert shard_of("u://doc/7", 4) == shard_of("u://doc/7", 4)
        # With 40 distinct URLs, at least two shards must be populated.
        assert sum(1 for count in stats.shard_documents if count) >= 2

    def test_single_shard_degenerates_to_global(self):
        single = ShardedBackend(1)
        memory = InMemoryBackend()
        for index in range(10):
            single.add(record(f"u://{index}", f"alpha token{index}"))
            memory.add(record(f"u://{index}", f"alpha token{index}"))
        assert single.search(["alpha"], limit=5) == memory.search(["alpha"], limit=5)

    def test_empty_store_search(self):
        assert ShardedBackend(4).search(["anything"]) == []
        assert ShardedBackend(4).matching_documents(["x"], require_all=True) == set()


class TestIngestor:
    def test_ingest_page_skips_error_pages(self):
        ingestor = Ingestor(InMemoryBackend())
        assert ingestor.ingest_page(page("u://1", "T", "body", status=404)) is None
        assert len(ingestor.backend) == 0

    def test_ingest_page_dedups_without_reanalysis(self):
        backend = InMemoryBackend()
        ingestor = Ingestor(backend)
        first = ingestor.ingest_page(page("u://1", "T", "toyota"))
        second = ingestor.ingest_page(page("u://1", "T", "toyota"))
        assert first == second == 1
        assert len(backend) == 1

    def test_annotations_become_searchable_tokens(self):
        backend = InMemoryBackend()
        ingestor = Ingestor(backend)
        ingestor.ingest_page(
            page("u://1", "T", "body"), annotations={"domain": "government"}
        )
        assert backend.matching_documents(["government"]) == {1}
        assert backend.get(1).annotations == {"domain": "government"}

    def test_listeners_fire_only_for_new_documents(self):
        ingestor = Ingestor(InMemoryBackend())
        seen: list[tuple[str, int]] = []
        ingestor.add_listener(lambda record, doc_id: seen.append((record.url, doc_id)))
        ingestor.ingest(record("u://1", "alpha"))
        ingestor.ingest(record("u://1", "alpha"))  # duplicate: no event
        ingestor.ingest_batch([record("u://2", "bravo"), record("u://3", "charlie")])
        assert seen == [("u://1", 1), ("u://2", 2), ("u://3", 3)]

    def test_batch_returns_ids_in_order(self):
        ingestor = Ingestor(InMemoryBackend())
        ids = ingestor.ingest_batch(
            [record("u://1", "a"), record("u://2", "b"), record("u://1", "a")]
        )
        assert ids == [1, 2, 1]
