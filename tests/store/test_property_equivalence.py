"""Property-based backend equivalence under random ingest/search interleavings.

``tests/store/test_store_equivalence.py`` pins equivalence on one real
surfaced corpus ingested up front.  This module attacks the same claim
adversarially: a seeded generator produces ~200-op cases interleaving
ingests (fresh URLs, duplicate URLs, every source tag, occasional empty
token streams) with searches (random vocab/nonsense terms, varying k),
match queries and stat reads -- applied op-for-op to an
:class:`InMemoryBackend` engine, to :class:`ShardedBackend` engines with
3 and 8 shards, and to the durable
:class:`~repro.persist.SqliteBackend`.  After *every* operation all
implementations must agree exactly: same doc ids, same rankings with
bit-identical scores, same match sets, same stats.
"""

from __future__ import annotations

import pytest

from repro.datagen import vocab
from repro.persist import SqliteBackend
from repro.search.engine import SearchEngine
from repro.store import IngestRecord, ShardedBackend
from repro.store.records import (
    SOURCE_DEEP_CRAWLED,
    SOURCE_SURFACE,
    SOURCE_SURFACED,
    SOURCE_VERTICAL,
    SOURCE_WEBTABLE,
)
from repro.util.rng import SeededRng

SOURCES = [
    SOURCE_SURFACE,
    SOURCE_SURFACED,
    SOURCE_DEEP_CRAWLED,
    SOURCE_VERTICAL,
    SOURCE_WEBTABLE,
]

#: Terms the generator draws document tokens and query tokens from; a
#: small pool keeps postings dense so searches actually collide.
TERM_POOL = (
    [make.lower() for make in vocab.CAR_MAKES]
    + [color for color in vocab.CAR_COLORS[:8]]
    + [city.lower().split()[0] for city in vocab.CITY_NAMES[:12]]
    + vocab.FILLER_WORDS[:10]
)


def random_record(rng: SeededRng, url_counter: int) -> IngestRecord:
    tokens = [rng.choice(TERM_POOL) for _ in range(rng.randint(0, 30))]
    host = f"site{rng.randint(0, 5)}.example.com"
    text = " ".join(tokens)
    return IngestRecord(
        url=f"http://{host}/page/{url_counter}",
        host=host,
        title=f"page {url_counter}",
        text=text,
        tokens=tokens,
        source=rng.choice(SOURCES),
    )


def random_query(rng: SeededRng) -> str:
    terms = [rng.choice(TERM_POOL) for _ in range(rng.randint(1, 3))]
    if rng.maybe(0.1):
        terms.append("zzz-no-such-term")
    return " ".join(terms)


class Interleaving:
    """One seeded op stream applied to all engines in lockstep.

    ``engines[0]`` (the in-memory reference) defines the expected answer
    for every op; every other engine must match it exactly.
    ``extra_backends`` lets callers append further implementations (the
    sqlite-on-tmpdir backend) to the default memory/sharded trio.
    """

    def __init__(self, seed: str, ops: int = 200, extra_backends=()) -> None:
        self.rng = SeededRng(seed)
        self.ops = ops
        self.engines = [
            SearchEngine(),
            SearchEngine(backend=ShardedBackend(3)),
            SearchEngine(backend=ShardedBackend(8)),
            *(SearchEngine(backend=backend) for backend in extra_backends),
        ]
        self.ingested: list[IngestRecord] = []
        self.searches = 0
        self.url_counter = 0

    @property
    def reference(self) -> SearchEngine:
        return self.engines[0]

    @property
    def others(self) -> list[SearchEngine]:
        return self.engines[1:]

    def run(self) -> None:
        for _ in range(self.ops):
            self.step()

    def step(self) -> None:
        roll = self.rng.random()
        if roll < 0.45:
            self.op_ingest_fresh()
        elif roll < 0.55:
            self.op_ingest_duplicate()
        elif roll < 0.85:
            self.op_search()
        elif roll < 0.95:
            self.op_matching_documents()
        else:
            self.op_stats()

    # -- operations ----------------------------------------------------------

    def op_ingest_fresh(self) -> None:
        self.url_counter += 1
        record = random_record(self.rng, self.url_counter)
        self.ingested.append(record)
        ids = [engine.ingest_records([record])[0] for engine in self.engines]
        assert len(set(ids)) == 1, f"doc ids diverged for {record.url}: {ids}"

    def op_ingest_duplicate(self) -> None:
        """Re-ingesting a stored URL must return the existing id everywhere."""
        if not self.ingested:
            return self.op_ingest_fresh()
        original = self.rng.choice(self.ingested)
        ids = [engine.ingest_records([original])[0] for engine in self.engines]
        expected = self.reference.backend.doc_id_for_url(original.url)
        assert ids == [expected] * len(self.engines)

    def op_search(self) -> None:
        query = random_query(self.rng)
        k = self.rng.choice([1, 3, 10, 50, None])
        self.searches += 1
        if k is None:  # full ranking through the backend seam
            tokens = query.split()
            expected = self.reference.backend.search(tokens, limit=None)
            for engine in self.others:
                assert engine.backend.search(tokens, limit=None) == expected
            return
        expected = [
            (r.doc_id, r.url, r.host, r.title, r.score, r.source)
            for r in self.reference.search(query, k=k)
        ]
        for engine in self.others:
            got = [
                (r.doc_id, r.url, r.host, r.title, r.score, r.source)
                for r in engine.search(query, k=k)
            ]
            assert got == expected, f"top-{k} diverged for {query!r}"

    def op_matching_documents(self) -> None:
        query = random_query(self.rng)
        require_all = self.rng.maybe(0.5)
        expected = [
            d.doc_id
            for d in self.reference.matching_documents(query, require_all=require_all)
        ]
        for engine in self.others:
            got = [
                d.doc_id
                for d in engine.matching_documents(query, require_all=require_all)
            ]
            assert got == expected

    def op_stats(self) -> None:
        reference = self.reference
        for engine in self.others:
            assert len(reference) == len(engine)
            assert reference.count_by_source() == engine.count_by_source()
        host = f"site{self.rng.randint(0, 5)}.example.com"
        expected = [d.doc_id for d in reference.documents_for_host(host)]
        for engine in self.others:
            assert [d.doc_id for d in engine.documents_for_host(host)] == expected

    # -- final-state checks --------------------------------------------------

    def assert_final_state_identical(self) -> None:
        """Every stored document identical in all backends, URLs unique."""
        docs = [
            (d.doc_id, d.url, d.host, d.text, d.source)
            for d in self.reference.documents()
        ]
        for engine in self.others:
            assert [
                (d.doc_id, d.url, d.host, d.text, d.source) for d in engine.documents()
            ] == docs
        assert len(docs) == len({url for _, url, _, _, _ in docs})


@pytest.mark.persist
@pytest.mark.parametrize("seed", ["case-a", "case-b", "case-c", "case-d"])
def test_random_interleavings_agree(seed, tmp_path):
    sqlite = SqliteBackend(tmp_path / f"{seed}.sqlite3")
    case = Interleaving(seed, ops=200, extra_backends=[sqlite])
    case.run()
    # The case must have exercised both paths to mean anything.
    assert len(case.ingested) > 40
    assert case.searches > 20
    case.assert_final_state_identical()
    sqlite.close()


@pytest.mark.persist
def test_sqlite_engine_agrees_after_reopen(tmp_path):
    """The durable backend must still agree op-for-op after a reopen
    (fresh process simulation: state reloaded from the file alone)."""
    path = tmp_path / "reopen.sqlite3"
    case = Interleaving("reopen-case", ops=120, extra_backends=[SqliteBackend(path)])
    case.run()
    case.engines[-1].backend.close()
    case.engines[-1] = SearchEngine(backend=SqliteBackend(path))
    for _ in range(60):  # keep interleaving against the reopened file
        case.step()
    case.assert_final_state_identical()
    case.engines[-1].backend.close()


def test_interleavings_are_reproducible():
    """The op stream itself is a function of the seed alone."""
    first = Interleaving("repro-check", ops=60)
    first.run()
    second = Interleaving("repro-check", ops=60)
    second.run()
    assert [r.url for r in first.ingested] == [r.url for r in second.ingested]
    assert [r.tokens for r in first.ingested] == [r.tokens for r in second.ingested]
