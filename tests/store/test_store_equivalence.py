"""Equivalence pins for the content-store refactor.

Two claims, both exact (bit-identical floats, identical ids):

* **pre-vs-post**: a :class:`SearchEngine` over the default
  :class:`InMemoryBackend` reproduces the pre-refactor engine --
  replicated verbatim below as :class:`LegacyEngine` -- on a seeded
  surfaced corpus: same doc ids, same rankings with the same scores,
  same metrics;
* **memory-vs-sharded**: :class:`ShardedBackend` (4 and 7 shards)
  returns identical top-k lists, matches and stats to the in-memory
  backend on the same corpus.
"""

from __future__ import annotations

import pytest

from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex
from repro.store import IngestRecord, InMemoryBackend, ShardedBackend
from repro.util.text import tokenize


class LegacyEngine:
    """The pre-refactor ``SearchEngine`` storage + ranking, verbatim.

    Copied from the engine as it stood before the store extraction (doc
    dicts, URL dedup, id assignment and BM25 ranking inline); kept here
    as the executable definition of "pre-refactor behavior".
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self._index = InvertedIndex(k1=k1, b=b)
        self._documents: dict[int, dict] = {}
        self._url_to_doc: dict[str, int] = {}
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._documents)

    def add_prepared(self, url, host, title, text, tokens, source, annotations=None):
        existing = self._url_to_doc.get(url)
        if existing is not None:
            return existing
        doc_id = self._next_id
        self._next_id += 1
        self._index.add_document(doc_id, tokens)
        self._documents[doc_id] = dict(
            doc_id=doc_id, url=url, host=host, title=title, text=text,
            source=source, annotations=dict(annotations or {}),
        )
        self._url_to_doc[url] = doc_id
        return doc_id

    def search(self, query: str, k: int = 10) -> list[tuple]:
        tokens = tokenize(query)
        ranked = self._index.score(tokens, limit=k)
        return [
            (
                doc_id,
                self._documents[doc_id]["url"],
                self._documents[doc_id]["host"],
                self._documents[doc_id]["title"],
                score,
                self._documents[doc_id]["source"],
            )
            for doc_id, score in ranked
        ]

    def matching_documents(self, query: str, require_all: bool = True) -> list[int]:
        ids = self._index.matching_documents(tokenize(query), require_all=require_all)
        return sorted(ids)

    def count_by_source(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for doc in self._documents.values():
            counts[doc["source"]] = counts.get(doc["source"], 0) + 1
        return counts


def record_stream(engine: SearchEngine) -> list[IngestRecord]:
    """The seeded corpus as an ingest stream, in original doc-id order.

    Token preparation mirrors ``add_page`` exactly: text tokens first,
    then annotation tokens in annotation insertion order.
    """
    records = []
    for doc in engine.documents():
        tokens = tokenize(doc.text)
        for key, value in doc.annotations.items():
            tokens.extend(tokenize(f"{key} {value}"))
        records.append(
            IngestRecord(
                url=doc.url,
                host=doc.host,
                title=doc.title,
                text=doc.text,
                tokens=tokens,
                source=doc.source,
                annotations=dict(doc.annotations),
            )
        )
    return records


def result_tuples(engine: SearchEngine, query: str, k: int) -> list[tuple]:
    return [
        (r.doc_id, r.url, r.host, r.title, r.score, r.source)
        for r in engine.search(query, k=k)
    ]


@pytest.fixture(scope="module")
def corpus(surfaced_world):
    """Records + query sample from the seeded, surfaced tiny world."""
    records = record_stream(surfaced_world.engine)
    assert len(records) > 200, "seeded corpus should be non-trivial"
    queries = [query.text for query in surfaced_world.query_log.head(40)]
    queries += [query.text for query in surfaced_world.query_log.by_kind("tail")[:60]]
    assert len(queries) >= 80
    return records, queries


@pytest.fixture(scope="module")
def engines(corpus):
    """The same stream ingested into every implementation under test."""
    records, _ = corpus
    legacy = LegacyEngine()
    for record in records:
        legacy.add_prepared(
            url=record.url, host=record.host, title=record.title,
            text=record.text, tokens=record.tokens, source=record.source,
            annotations=record.annotations,
        )
    memory = SearchEngine()
    memory.ingest_records(records)
    sharded4 = SearchEngine(backend=ShardedBackend(4))
    sharded4.ingest_records(records)
    sharded7 = SearchEngine(backend=ShardedBackend(7))
    sharded7.ingest_records(records)
    return legacy, memory, sharded4, sharded7


class TestPreVsPostRefactor:
    """InMemoryBackend == the pre-refactor engine, byte for byte."""

    def test_doc_ids_identical(self, corpus, engines):
        records, _ = corpus
        legacy, memory, _, _ = engines
        assert len(legacy) == len(memory)
        for record in records:
            assert legacy._url_to_doc[record.url] == memory.backend.doc_id_for_url(record.url)

    def test_search_results_identical_including_scores(self, corpus, engines):
        _, queries = corpus
        legacy, memory, _, _ = engines
        compared = 0
        for query in queries:
            for k in (1, 3, 10, 50):
                expected = legacy.search(query, k=k)
                assert result_tuples(memory, query, k) == expected
                compared += sum(1 for _ in expected)
        assert compared > 100, "query sample must actually produce results"

    def test_matching_documents_identical(self, corpus, engines):
        _, queries = corpus
        legacy, memory, _, _ = engines
        for query in queries[:40]:
            for require_all in (True, False):
                expected = legacy.matching_documents(query, require_all=require_all)
                got = [d.doc_id for d in memory.matching_documents(query, require_all=require_all)]
                assert got == expected

    def test_metrics_identical(self, engines):
        legacy, memory, _, _ = engines
        assert memory.count_by_source() == legacy.count_by_source()
        assert len(memory) == len(legacy)


class TestMemoryVsSharded:
    """ShardedBackend (>= 4 shards) == InMemoryBackend, exactly."""

    def test_doc_ids_identical(self, corpus, engines):
        records, _ = corpus
        _, memory, sharded4, sharded7 = engines
        for record in records:
            doc_id = memory.backend.doc_id_for_url(record.url)
            assert sharded4.backend.doc_id_for_url(record.url) == doc_id
            assert sharded7.backend.doc_id_for_url(record.url) == doc_id

    def test_topk_identical_including_scores(self, corpus, engines):
        _, queries = corpus
        _, memory, sharded4, sharded7 = engines
        for query in queries:
            for k in (1, 5, 10, 100):
                expected = result_tuples(memory, query, k)
                assert result_tuples(sharded4, query, k) == expected
                assert result_tuples(sharded7, query, k) == expected

    def test_full_rankings_identical(self, corpus, engines):
        _, queries = corpus
        _, memory, sharded4, _ = engines
        for query in queries[:30]:
            tokens = tokenize(query)
            assert (
                sharded4.backend.search(tokens, limit=None)
                == memory.backend.search(tokens, limit=None)
            )

    def test_matching_and_reads_identical(self, corpus, engines):
        _, queries = corpus
        _, memory, sharded4, _ = engines
        for query in queries[:30]:
            assert (
                sharded4.backend.matching_documents(tokenize(query), require_all=True)
                == memory.backend.matching_documents(tokenize(query), require_all=True)
            )
        assert [d.doc_id for d in sharded4.documents()] == [d.doc_id for d in memory.documents()]
        assert sharded4.count_by_source() == memory.count_by_source()

    def test_shards_are_actually_used(self, engines):
        _, _, sharded4, sharded7 = engines
        assert sum(1 for n in sharded4.store_stats().shard_documents if n) == 4
        assert sum(1 for n in sharded7.store_stats().shard_documents if n) >= 5
