"""Tests for the deterministic RNG wrapper."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SeededRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        first = [SeededRng(7).random() for _ in range(5)]
        second = [SeededRng(7).random() for _ in range(5)]
        assert first != []
        assert [SeededRng(7).random() for _ in range(5)] == first == second

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_child_streams_are_deterministic(self):
        a = SeededRng(3).child("x").randint(0, 10**9)
        b = SeededRng(3).child("x").randint(0, 10**9)
        assert a == b

    def test_child_streams_are_independent(self):
        base = SeededRng(3)
        assert base.child("x").randint(0, 10**9) != base.child("y").randint(0, 10**9)

    def test_seed_property(self):
        assert SeededRng(11).seed == 11


class TestSampling:
    def test_choice_returns_member(self, rng):
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_sample_is_clamped(self, rng):
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_sample_distinct(self, rng):
        result = rng.sample(list(range(100)), 20)
        assert len(result) == len(set(result)) == 20

    def test_shuffle_preserves_elements(self, rng):
        items = list(range(30))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(30)), "original must not be mutated"

    def test_weighted_choice_respects_zero_weight(self, rng):
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_sample_size(self, rng):
        result = rng.weighted_sample(list(range(10)), [1.0] * 10, 4)
        assert len(result) == 4
        assert len(set(result)) == 4

    def test_weighted_sample_returns_all_when_k_large(self, rng):
        assert sorted(rng.weighted_sample([1, 2, 3], [1, 1, 1], 5)) == [1, 2, 3]

    def test_bounded_int_lognormal_respects_bounds(self, rng):
        values = [rng.bounded_int_lognormal(4.0, 1.0, 10, 100) for _ in range(200)]
        assert all(10 <= value <= 100 for value in values)

    def test_maybe_extremes(self, rng):
        assert not any(rng.maybe(0.0) for _ in range(20))
        assert all(rng.maybe(1.0) for _ in range(20))

    def test_partition_covers_all_items(self, rng):
        selected, rest = rng.partition(range(50), 0.5)
        assert sorted(selected + rest) == list(range(50))


class TestPropertyBased:
    @given(seed=st.integers(min_value=0, max_value=10**6), k=st.integers(min_value=0, max_value=20))
    def test_sample_never_exceeds_population(self, seed, k):
        rng = SeededRng(seed)
        population = list(range(10))
        result = rng.sample(population, k)
        assert len(result) == min(k, len(population))
        assert set(result) <= set(population)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_uniform_within_bounds(self, seed):
        rng = SeededRng(seed)
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        low=st.integers(min_value=-100, max_value=0),
        high=st.integers(min_value=1, max_value=100),
    )
    def test_randint_within_bounds(self, seed, low, high):
        value = SeededRng(seed).randint(low, high)
        assert low <= value <= high


def test_choice_empty_sequence_raises(rng):
    with pytest.raises(IndexError):
        rng.choice([])
