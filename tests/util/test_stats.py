"""Tests for statistics helpers (concentration curves, capture-recapture)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    chapman_estimate,
    cumulative_share,
    gini,
    harmonic_number,
    lincoln_petersen_estimate,
    percentile,
    share_of_top,
    wilson_interval,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_interpolates_between_points(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 90) == pytest.approx(9.0)

    def test_extremes_are_min_and_max(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_input_order_is_irrelevant(self):
        assert percentile([4, 2, 8, 6], 75) == percentile([8, 6, 4, 2], 75)

    def test_empty_and_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_monotone_in_q(self, values):
        p50, p90, p99 = (percentile(values, q) for q in (50, 90, 99))
        # Tolerance of a few ulps: interpolating between nearly-adjacent
        # floats can round either way.
        slack = 1e-9 * max(1.0, p99)
        assert p50 <= p90 + slack
        assert p90 <= p99 + slack
        assert min(values) <= p50 + slack and p99 <= max(values) + slack


class TestCumulativeShare:
    def test_simple_case(self):
        assert cumulative_share([5, 3, 2]) == pytest.approx([0.5, 0.8, 1.0])

    def test_sorts_descending_first(self):
        assert cumulative_share([2, 5, 3]) == pytest.approx([0.5, 0.8, 1.0])

    def test_empty(self):
        assert cumulative_share([]) == []

    def test_all_zero(self):
        assert cumulative_share([0, 0]) == [0.0, 0.0]

    def test_share_of_top(self):
        assert share_of_top([10, 5, 5], 1) == 0.5
        assert share_of_top([10, 5, 5], 10) == 1.0
        assert share_of_top([10, 5, 5], 0) == 0.0


class TestGini:
    def test_perfect_equality(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentration_is_higher(self):
        assert gini([100, 1, 1, 1]) > gini([30, 28, 25, 20])

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0


class TestCaptureRecapture:
    def test_lincoln_petersen_exact(self):
        estimate = lincoln_petersen_estimate(50, 40, 20)
        assert estimate.estimate == pytest.approx(100.0)

    def test_lincoln_petersen_requires_recaptures(self):
        with pytest.raises(ValueError):
            lincoln_petersen_estimate(10, 10, 0)

    def test_chapman_close_to_lincoln_petersen(self):
        chapman = chapman_estimate(50, 40, 20)
        lincoln = lincoln_petersen_estimate(50, 40, 20)
        assert chapman.estimate == pytest.approx(lincoln.estimate, rel=0.05)

    def test_chapman_handles_zero_recaptures(self):
        estimate = chapman_estimate(10, 10, 0)
        assert estimate.estimate == pytest.approx(120.0)

    def test_chapman_validates_inputs(self):
        with pytest.raises(ValueError):
            chapman_estimate(5, 5, 6)
        with pytest.raises(ValueError):
            chapman_estimate(-1, 5, 0)

    def test_coverage_of(self):
        estimate = chapman_estimate(50, 40, 20)
        assert 0.0 < estimate.coverage_of(60) <= 1.0
        assert estimate.coverage_of(10**9) == 1.0


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extreme_successes(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0)
        assert low > 0.9

    def test_invalid_successes(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)


class TestHarmonicNumber:
    def test_first_values(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)

    def test_generalized(self):
        assert harmonic_number(3, exponent=2.0) == pytest.approx(1 + 0.25 + 1 / 9)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
    def test_cumulative_share_monotone_and_bounded(self, values):
        shares = cumulative_share(values)
        assert all(0.0 <= share <= 1.0 + 1e-9 for share in shares)
        assert all(earlier <= later + 1e-9 for earlier, later in zip(shares, shares[1:]))

    @given(
        n1=st.integers(min_value=1, max_value=500),
        n2=st.integers(min_value=1, max_value=500),
        data=st.data(),
    )
    def test_chapman_estimate_at_least_observed(self, n1, n2, data):
        m = data.draw(st.integers(min_value=0, max_value=min(n1, n2)))
        estimate = chapman_estimate(n1, n2, m)
        # The estimated population can never be smaller than what both samples
        # jointly observed.
        observed_union = n1 + n2 - m
        assert estimate.estimate >= observed_union - 1

    @given(trials=st.integers(min_value=1, max_value=1000), data=st.data())
    def test_wilson_interval_ordered_and_bounded(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0
