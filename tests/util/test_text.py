"""Tests for text utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.text import (
    edit_distance,
    jaccard,
    name_tokens,
    ngrams,
    normalize,
    string_similarity,
    term_frequencies,
    tokenize,
)


class TestTokenize:
    def test_basic_tokenization(self):
        assert tokenize("Used Ford Focus 1993!") == ["used", "ford", "focus", "1993"]

    def test_stopword_removal(self):
        assert tokenize("the price of the car", drop_stopwords=True) == ["price", "car"]

    def test_stopwords_kept_by_default(self):
        assert "the" in tokenize("the price")

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! --- ???") == []


class TestNormalize:
    def test_lowercases_and_collapses_whitespace(self):
        assert normalize("  Hello   WORLD \n") == "hello world"

    def test_empty(self):
        assert normalize("   ") == ""


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_sequence(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_partial_overlap(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard([], []) == 0.0


class TestNameTokens:
    def test_underscore_names(self):
        assert name_tokens("min_price") == ["min", "price"]

    def test_camel_case(self):
        assert name_tokens("minPrice") == ["min", "price"]

    def test_dashes_and_dots(self):
        assert name_tokens("zip-code.value") == ["zip", "code", "value"]

    def test_plain_name(self):
        assert name_tokens("make") == ["make"]


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("price", "price") == 0

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_empty_strings(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_symmetry(self):
        assert edit_distance("zipcode", "zip") == edit_distance("zip", "zipcode")


class TestStringSimilarity:
    def test_identical_after_normalization(self):
        assert string_similarity("Price", "price ") == 1.0

    def test_unrelated_strings_low(self):
        assert string_similarity("make", "bedrooms") < 0.5

    def test_similar_strings_high(self):
        assert string_similarity("zipcode", "zip_code") > 0.7


class TestTermFrequencies:
    def test_counts_across_texts(self):
        counts = term_frequencies(["red car", "red house"])
        assert counts["red"] == 2
        assert counts["car"] == 1

    def test_stopwords_dropped(self):
        counts = term_frequencies(["the red the car"])
        assert "the" not in counts


class TestProperties:
    @given(st.text(max_size=200))
    def test_tokenize_always_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), max_size=10),
           st.lists(st.text(alphabet="abc", min_size=1, max_size=3), max_size=10))
    def test_jaccard_bounded_and_symmetric(self, left, right):
        value = jaccard(left, right)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaccard(right, left))

    @given(st.text(alphabet="abcde", max_size=12), st.text(alphabet="abcde", max_size=12))
    def test_edit_distance_triangle_inequality_with_empty(self, left, right):
        # d(l, r) <= len(l) + len(r)  (going through the empty string)
        assert edit_distance(left, right) <= len(left) + len(right)

    @given(st.text(max_size=40), st.text(max_size=40))
    def test_string_similarity_bounded(self, left, right):
        assert 0.0 <= string_similarity(left, right) <= 1.0
