"""Tests for Zipf sampling and power-law fitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import SeededRng
from repro.util.zipf import PowerLawFit, ZipfSampler, fit_power_law, tail_mass


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(n=50, exponent=1.1)
        total = sum(sampler.probability(rank) for rank in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_rank_one_is_most_probable(self):
        sampler = ZipfSampler(n=20)
        probabilities = [sampler.probability(rank) for rank in range(1, 21)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_sample_rank_in_range(self):
        sampler = ZipfSampler(n=10)
        rng = SeededRng(1)
        for _ in range(100):
            assert 1 <= sampler.sample_rank(rng) <= 10

    def test_sample_counts_total(self):
        sampler = ZipfSampler(n=30)
        counts = sampler.sample_counts(SeededRng(2), 500)
        assert sum(counts) == 500
        assert len(counts) == 30

    def test_head_gets_more_volume_than_tail(self):
        sampler = ZipfSampler(n=100, exponent=1.0)
        counts = sampler.sample_counts(SeededRng(3), 5000)
        assert sum(counts[:10]) > sum(counts[50:60])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(n=0)
        with pytest.raises(ValueError):
            ZipfSampler(n=5, exponent=0)

    def test_probability_out_of_range(self):
        sampler = ZipfSampler(n=5)
        with pytest.raises(ValueError):
            sampler.probability(0)
        with pytest.raises(ValueError):
            sampler.probability(6)


class TestFitPowerLaw:
    def test_recovers_exact_power_law(self):
        frequencies = [1000 / rank**1.2 for rank in range(1, 200)]
        fit = fit_power_law(frequencies)
        assert isinstance(fit, PowerLawFit)
        assert fit.exponent == pytest.approx(1.2, abs=0.01)
        assert fit.r_squared > 0.999

    def test_zipf_samples_fit_reasonably(self):
        sampler = ZipfSampler(n=200, exponent=1.0)
        counts = sampler.sample_counts(SeededRng(4), 50000)
        counts = sorted((count for count in counts if count > 0), reverse=True)
        fit = fit_power_law(counts)
        assert 0.5 < fit.exponent < 1.6
        assert fit.r_squared > 0.7

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([5.0])

    def test_ignores_zero_frequencies(self):
        fit = fit_power_law([100, 50, 25, 0, 0])
        assert fit.exponent > 0


class TestTailMass:
    def test_all_mass_in_tail_when_head_empty(self):
        assert tail_mass([5, 4, 3], 0) == 1.0

    def test_no_mass_when_head_covers_everything(self):
        assert tail_mass([5, 4, 3], 3) == 0.0

    def test_zipf_tail_is_heavy(self):
        frequencies = [1000 / rank for rank in range(1, 1001)]
        assert tail_mass(frequencies, 10) > 0.5

    def test_empty_input(self):
        assert tail_mass([], 5) == 0.0


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=200), exponent=st.floats(min_value=0.5, max_value=2.0))
    def test_probability_mass_is_valid(self, n, exponent):
        sampler = ZipfSampler(n=n, exponent=exponent)
        masses = [sampler.probability(rank) for rank in range(1, n + 1)]
        assert all(mass > 0 for mass in masses)
        assert sum(masses) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        frequencies=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=50)
    )
    def test_tail_mass_bounded(self, frequencies):
        ordered = sorted(frequencies, reverse=True)
        assert 0.0 <= tail_mass(ordered, 1) <= 1.0
