"""Tests for mediated schemas and form-to-schema matching."""

from __future__ import annotations

import pytest

from repro.core.form_model import SurfacingForm
from repro.datagen.domains import domain_names
from repro.htmlparse.forms import ParsedForm, ParsedInput
from repro.virtual.matching import SchemaMatcher
from repro.virtual.mediated_schema import all_schemas, schema_for_domain


class TestMediatedSchemas:
    def test_schema_exists_for_every_domain(self):
        for name in domain_names():
            schema = schema_for_domain(name)
            assert schema.domain == name
            assert schema.attributes

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            schema_for_domain("pet_rocks")

    def test_attribute_lookup_includes_synonyms(self):
        schema = schema_for_domain("used_cars")
        assert schema.attribute("make").name == "make"
        assert schema.attribute("brand").name == "make"
        assert schema.attribute("frobnicator") is None

    def test_all_schemas_sorted_and_keyworded(self):
        schemas = all_schemas()
        assert [schema.domain for schema in schemas] == sorted(s.domain for s in schemas)
        assert all(schema.keywords for schema in schemas)


class TestSchemaMatcher:
    def test_input_name_similarity(self):
        matcher = SchemaMatcher()
        schema = schema_for_domain("used_cars")
        zip_input = ParsedInput(name="zip_code", kind="text")
        assert matcher.match_input(zip_input, schema.attribute("zipcode")) > 0.6
        assert matcher.match_input(zip_input, schema.attribute("make")) < 0.3

    def test_value_overlap_matches_opaque_names(self):
        matcher = SchemaMatcher()
        schema = schema_for_domain("used_cars")
        opaque = ParsedInput(
            name="field12", kind="select", options=("Toyota", "Honda", "Ford", "BMW")
        )
        assert matcher.match_input(opaque, schema.attribute("make")) > 0.3

    def test_map_form_maps_most_inputs(self, car_form):
        matcher = SchemaMatcher()
        mapping = matcher.map_form(car_form, schema_for_domain("used_cars"))
        assert mapping.domain == "used_cars"
        assert mapping.mapped_fraction > 0.5
        make_attribute = mapping.attribute_for("make")
        assert make_attribute == "make"
        assert mapping.input_for("make") == "make"

    def test_classify_domain_picks_used_cars_for_car_form(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        assert mapping.domain == "used_cars"

    def test_classify_domain_picks_government_for_gov_form(self, gov_site):
        from repro.core.form_model import discover_forms
        from repro.webspace.web import Web

        web = Web()
        web.register(gov_site)
        form = discover_forms(web.fetch(gov_site.homepage_url()))[0]
        mapping = SchemaMatcher().classify_domain(form)
        assert mapping.domain == "government"

    def test_mapping_on_empty_form(self):
        parsed = ParsedForm(action="/s", method="get", inputs=())
        form = SurfacingForm(host="x.test", parsed=parsed)
        mapping = SchemaMatcher().map_form(form, schema_for_domain("books"))
        assert mapping.matches == []
        assert mapping.mapped_fraction == 0.0
