"""Boundary tests for ``virtual/routing.py`` (direct module coverage).

The router was previously only exercised through the vertical engine;
these pin its edge semantics directly: ``selected_hosts(limit=0)``,
``min_score`` filtering at the boundaries, and unknown-host lookups.
"""

from __future__ import annotations

import pytest

from repro.core.form_model import discover_forms
from repro.util.text import STOPWORDS
from repro.virtual.matching import SchemaMatcher
from repro.virtual.routing import RoutedSource, Router, RoutingDecision
from repro.webspace.web import Web


@pytest.fixture
def router(car_site, gov_site) -> Router:
    web = Web()
    web.register_all([car_site, gov_site])
    router = Router()
    for site in (car_site, gov_site):
        form = discover_forms(web.fetch(site.homepage_url()))[0]
        mapping = SchemaMatcher().classify_domain(form)
        router.register(
            RoutedSource(
                host=site.host,
                domain=mapping.domain,
                mapping=mapping,
                description=site.description,
            )
        )
    return router


class TestSelectedHostsLimit:
    def test_limit_zero_selects_nothing(self, router, car_site):
        decision = router.route("used toyota camry")
        assert decision.ranked_sources, "query must rank at least one source"
        assert decision.selected_hosts(0) == []

    def test_negative_limit_selects_nothing(self, router):
        decision = router.route("used toyota camry")
        assert decision.selected_hosts(-1) == []

    def test_limit_beyond_ranked_sources_returns_all(self, router, car_site):
        decision = router.route("used toyota camry")
        assert car_site.host in decision.selected_hosts(100)


class TestMinScoreBoundaries:
    def _decision(self, scores: dict[str, float]) -> RoutingDecision:
        ranked = tuple(sorted(scores.items(), key=lambda item: (-item[1], item[0])))
        return RoutingDecision(query="q", ranked_sources=ranked)

    def test_score_equal_to_min_score_is_excluded(self):
        # selected_hosts keeps strictly-greater scores only.
        decision = self._decision({"a.example.com": 0.5, "b.example.com": 0.6})
        assert decision.selected_hosts(5, min_score=0.5) == ["b.example.com"]

    def test_default_min_score_drops_zero_scores(self):
        decision = self._decision({"a.example.com": 0.0, "b.example.com": 0.2})
        assert decision.selected_hosts(5) == ["b.example.com"]

    def test_router_min_score_is_inclusive_at_registration_filter(self, router):
        """Router.route keeps sources scoring >= its min_score; a query
        covered at exactly the threshold fraction survives routing."""
        source = router.sources()[0]
        # Deterministic pick: set iteration order varies with the process
        # hash seed, and a stopword would be dropped by score().
        covered = min(token for token in source.vocabulary if token not in STOPWORDS)
        # Build a query whose coverage is exactly min_score for some router.
        query_tokens = [covered] + ["zzzunknown"] * 3  # coverage 0.25
        exact = Router(min_score=0.25)
        exact.register(source)
        decision = exact.route(" ".join(query_tokens))
        assert decision.ranked_sources, "score == min_score must survive route()"
        just_above = Router(min_score=0.2500001)
        just_above.register(source)
        assert not just_above.route(" ".join(query_tokens)).ranked_sources


class TestUnknownHost:
    def test_source_raises_key_error_for_unknown_host(self, router):
        with pytest.raises(KeyError):
            router.source("nowhere.example.com")

    def test_registered_hosts_resolve(self, router, car_site):
        assert router.source(car_site.host).host == car_site.host
