"""Tests for query routing and keyword reformulation."""

from __future__ import annotations

from repro.core.form_model import discover_forms
from repro.virtual.matching import SchemaMatcher
from repro.virtual.reformulation import Reformulator
from repro.virtual.routing import RoutedSource, Router
from repro.webspace.web import Web


def routed_source(site, web) -> RoutedSource:
    form = discover_forms(web.fetch(site.homepage_url()))[0]
    mapping = SchemaMatcher().classify_domain(form)
    return RoutedSource(
        host=site.host, domain=mapping.domain, mapping=mapping, description=site.description
    )


class TestRouter:
    def _router(self, car_site, gov_site) -> Router:
        web = Web()
        web.register_all([car_site, gov_site])
        router = Router()
        router.register(routed_source(car_site, web))
        router.register(routed_source(gov_site, web))
        return router

    def test_car_query_routes_to_car_site(self, car_site, gov_site):
        router = self._router(car_site, gov_site)
        decision = router.route("used toyota camry")
        assert decision.selected_hosts(1) == [car_site.host]

    def test_government_query_routes_to_gov_site(self, car_site, gov_site):
        router = self._router(car_site, gov_site)
        decision = router.route("water quality regulation survey")
        assert decision.selected_hosts(1) == [gov_site.host]

    def test_unrelated_query_routes_nowhere(self, car_site, gov_site):
        router = self._router(car_site, gov_site)
        decision = router.route("quantum chromodynamics lecture notes")
        assert decision.selected_hosts(5) == []

    def test_fortuitous_query_is_missed_by_routing(self, car_site, gov_site):
        """The router only sees schema and select-option vocabulary, not page content, so a
        content-specific query with no domain words is not routed -- the
        failure mode the paper contrasts with surfacing."""
        router = self._router(car_site, gov_site)
        record = car_site.database.table("listings").get(1)
        # Query by a content detail (the mileage figure) with no car words.
        decision = router.route(f"{record['mileage']} excellent verified")
        assert car_site.host not in decision.selected_hosts(5)

    def test_score_is_fraction_of_covered_tokens(self, car_site, gov_site):
        router = self._router(car_site, gov_site)
        source = router.source(car_site.host)
        assert router.score("toyota", source) == 1.0
        assert 0.0 < router.score("toyota spaceship", source) < 1.0
        assert router.score("", source) == 0.0


class TestReformulator:
    def test_select_values_bound_to_selects(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        reformulation = Reformulator().reformulate("red toyota sedan", mapping)
        assert reformulation.bindings.get("make") == "Toyota"
        assert reformulation.bindings.get("color") == "red"
        assert reformulation.bindings.get("body_style") == "sedan"

    def test_year_number_bound_to_year_input(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        reformulation = Reformulator().reformulate("toyota 2003", mapping)
        year_bindings = [name for name in reformulation.bindings if "year" in name]
        assert year_bindings, f"bindings: {reformulation.bindings}"

    def test_leftover_tokens_go_to_search_box(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        reformulation = Reformulator().reformulate("toyota excellent condition", mapping)
        search_values = [
            value for name, value in reformulation.bindings.items() if "excellent" in value
        ]
        assert search_values, "unmatched tokens should be sent to the search box"

    def test_leftovers_can_be_dropped(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        reformulation = Reformulator(bind_leftovers_to_search_box=False).reformulate(
            "toyota excellent condition", mapping
        )
        assert all("excellent" not in value for value in reformulation.bindings.values())
        assert "excellent" in reformulation.unbound_tokens

    def test_empty_query(self, car_form):
        mapping = SchemaMatcher().classify_domain(car_form)
        assert Reformulator().reformulate("", mapping).is_empty
