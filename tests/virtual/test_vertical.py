"""Tests for the vertical search engine (virtual integration end-to-end)."""

from __future__ import annotations

import pytest

from repro.core.extraction import extract_result_records
from repro.datagen.domains import domain
from repro.search.engine import SearchEngine
from repro.util.rng import SeededRng
from repro.virtual.matching import SchemaMatcher
from repro.virtual.vertical import VerticalSearchEngine
from repro.virtual.wrappers import ResultWrapper, matches_filters
from repro.webspace.loadmeter import AGENT_VIRTUAL
from repro.webspace.sitegen import build_deep_site
from repro.webspace.web import Web


@pytest.fixture
def car_vertical():
    """A two-source used-car vertical."""
    web = Web()
    sites = [
        build_deep_site(domain("used_cars"), f"cars{i}.vertical.test", 50, SeededRng(f"v{i}"))
        for i in range(2)
    ]
    web.register_all(sites)
    # A books site that must be rejected by the domain-restricted vertical.
    books = build_deep_site(domain("books"), "books.vertical.test", 30, SeededRng("vb"))
    web.register(books)
    engine = VerticalSearchEngine(web, domain="used_cars")
    accepted = engine.register_sites(web.deep_sites())
    return web, engine, sites, accepted


class TestRegistration:
    def test_only_domain_sites_accepted(self, car_vertical):
        _web, engine, sites, accepted = car_vertical
        assert accepted == len(sites)
        assert engine.source_count == len(sites)

    def test_post_only_site_rejected(self):
        web = Web()
        site = build_deep_site(domain("used_cars"), "post.vertical.test", 20, SeededRng(1), method="post")
        web.register(site)
        engine = VerticalSearchEngine(web, domain="used_cars")
        assert engine.register_site(site) is None

    def test_unrestricted_engine_accepts_all_domains(self):
        web = Web()
        cars = build_deep_site(domain("used_cars"), "c.any.test", 20, SeededRng(2))
        books = build_deep_site(domain("books"), "b.any.test", 20, SeededRng(3))
        web.register_all([cars, books])
        engine = VerticalSearchEngine(web)
        assert engine.register_sites([cars, books]) == 2


class TestWrappers:
    def test_wrapper_normalizes_fields(self, car_vertical):
        web, engine, sites, _accepted = car_vertical
        source = engine.sources()[0]
        template = sites[0].forms[0]
        make_input = next(spec for spec in template.inputs if spec.column == "make")
        url = source.form.submission_url({make_input.name: make_input.options[0]})
        page = web.fetch(url)
        records = source.wrapper.wrap_page(page.html)
        assert records
        assert all(record.get("make") for record in records)

    def test_matches_filters(self):
        from repro.virtual.wrappers import WrappedRecord

        record = WrappedRecord(host="h", title="t", detail_url="u", attributes={"make": "Toyota", "price": "5000"})
        assert matches_filters(record, {"make": "toyota"})
        assert matches_filters(record, {"price": "5000"})
        assert not matches_filters(record, {"make": "Honda"})
        assert not matches_filters(record, {"color": "red"})


class TestStructuredQueries:
    def test_structured_query_returns_matching_records(self, car_vertical):
        _web, engine, sites, _accepted = car_vertical
        make = sites[0].database.table("listings").get(1)["make"]
        answer = engine.structured_query({"make": make})
        assert answer.answered
        assert all(record.get("make").lower() == make.lower() for record in answer.records)
        assert len(answer.sources_contacted) == engine.source_count

    def test_structured_query_slices_by_color(self, car_vertical):
        _web, engine, sites, _accepted = car_vertical
        answer = engine.structured_query({"color": "red"})
        assert all(record.get("color") == "red" for record in answer.records)


class TestKeywordQueries:
    def test_keyword_query_answers_domain_query(self, car_vertical):
        _web, engine, sites, _accepted = car_vertical
        record = sites[0].database.table("listings").get(1)
        answer = engine.keyword_query(f"used {record['make']} {record['model']}")
        assert answer.routing is not None
        assert answer.sources_contacted
        assert answer.answered
        titles = " ".join(record_.title.lower() for record_ in answer.records)
        assert record["make"].lower() in titles

    def test_query_time_load_is_metered(self, car_vertical):
        web, engine, sites, _accepted = car_vertical
        before = web.load_meter.total(agent=AGENT_VIRTUAL)
        engine.keyword_query("used toyota")
        after = web.load_meter.total(agent=AGENT_VIRTUAL)
        assert after > before, "virtual integration fetches sites at query time"

    def test_off_domain_query_is_not_answered(self, car_vertical):
        _web, engine, _sites, _accepted = car_vertical
        answer = engine.keyword_query("moroccan chickpea stew recipe")
        assert not answer.answered
        assert answer.fetches_issued == 0


class TestStoreEmission:
    """Registered sources land in the shared content store."""

    def test_register_site_emits_vertical_source_record(self):
        from repro.store.records import SOURCE_VERTICAL

        web = Web()
        site = build_deep_site(domain("used_cars"), "cars.store.test", 40, SeededRng("vs"))
        web.register(site)
        search_engine = SearchEngine()
        vertical = VerticalSearchEngine(
            web, domain="used_cars", ingestor=search_engine.ingestor
        )
        assert vertical.register_site(site) is not None
        docs = search_engine.documents(source=SOURCE_VERTICAL)
        assert len(docs) == 1
        assert docs[0].host == "cars.store.test"
        assert docs[0].annotations["domain"] == "used_cars"
        # The source description is searchable alongside everything else.
        assert search_engine.search_hosts("used cars") == ["cars.store.test"]

    def test_rejected_site_emits_nothing(self):
        from repro.store.records import SOURCE_VERTICAL

        web = Web()
        books = build_deep_site(domain("books"), "books.store.test", 20, SeededRng("vb2"))
        web.register(books)
        search_engine = SearchEngine()
        vertical = VerticalSearchEngine(
            web, domain="used_cars", ingestor=search_engine.ingestor
        )
        assert vertical.register_site(books) is None
        assert search_engine.documents(source=SOURCE_VERTICAL) == []

    def test_unwired_engine_stays_storeless(self, car_vertical):
        _web, engine, _sites, _accepted = car_vertical
        assert engine._ingestor is None  # default: no store side effects

    def test_source_record_lands_even_when_homepage_already_crawled(self):
        from repro.store.records import SOURCE_VERTICAL
        from repro.webspace.loadmeter import AGENT_CRAWLER

        web = Web()
        site = build_deep_site(domain("used_cars"), "cars.dedup.test", 40, SeededRng("vs3"))
        web.register(site)
        search_engine = SearchEngine()
        homepage = web.fetch(site.homepage_url(), agent=AGENT_CRAWLER)
        search_engine.add_page(homepage)  # the crawl got there first
        vertical = VerticalSearchEngine(
            web, domain="used_cars", ingestor=search_engine.ingestor
        )
        assert vertical.register_site(site) is not None
        docs = search_engine.documents(source=SOURCE_VERTICAL)
        assert len(docs) == 1  # distinct record URL: registration still lands
        # Re-registration dedups to the same record.
        vertical2 = VerticalSearchEngine(
            web, domain="used_cars", ingestor=search_engine.ingestor
        )
        vertical2.register_site(site)
        assert len(search_engine.documents(source=SOURCE_VERTICAL)) == 1
