"""Tests for the HTML rendering helpers and form markup."""

from __future__ import annotations

from repro.htmlparse import extract_forms, extract_tables, extract_text, extract_title
from repro.webspace import html as markup
from repro.webspace.forms_markup import render_form, render_input
from repro.webspace.site import FormInputSpec, FormTemplate


class TestMarkupHelpers:
    def test_render_page_and_title_round_trip(self):
        page = markup.render_page("My Title", markup.paragraph("hello"), language="es")
        assert extract_title(page) == "My Title"
        assert 'lang="es"' in page
        assert "hello" in extract_text(page)

    def test_escaping_of_user_content(self):
        page = markup.render_page("T", markup.paragraph("<script>alert(1)</script>"))
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page

    def test_heading_level_clamped(self):
        assert markup.heading("x", level=0).startswith("<h1>")
        assert markup.heading("x", level=9).startswith("<h6>")

    def test_link_and_list(self):
        html = markup.unordered_list([markup.link("http://a.com/", "A"), markup.link("http://b.com/", "B")])
        assert html.count("<li>") == 2
        assert 'href="http://a.com/"' in html

    def test_definition_table_skips_none(self):
        html = markup.definition_table({"make": "Toyota", "color": None})
        table = extract_tables(html)[0]
        assert ("make", "Toyota") in table.rows
        assert all(row[0] != "color" for row in table.rows)

    def test_data_table_round_trip(self):
        html = markup.data_table(["a", "b"], [[1, 2], [3, 4]])
        table = extract_tables(html)[0]
        assert table.header == ("a", "b")
        assert table.rows == (("1", "2"), ("3", "4"))

    def test_result_banners(self):
        assert "1 result found" in markup.result_count_banner(1)
        assert "5 results found" in markup.result_count_banner(5)
        assert "No results found" in markup.no_results_banner()


class TestFormMarkup:
    def _template(self) -> FormTemplate:
        return FormTemplate(
            form_id="f1",
            action_path="/search",
            method="get",
            table="listings",
            inputs=[
                FormInputSpec(name="q", kind="text", role="search_box", label="Keywords"),
                FormInputSpec(
                    name="make", kind="select", role="select", column="make",
                    options=("Toyota", "Honda"), label="Make",
                ),
                FormInputSpec(name="lang", kind="hidden", role="hidden", default="en"),
            ],
        )

    def test_rendered_form_parses_back(self):
        parsed = extract_forms(render_form(self._template()))[0]
        assert parsed.action == "/search"
        assert parsed.is_get
        assert parsed.form_id == "f1"
        assert parsed.input_named("q").kind == "text"
        assert parsed.input_named("make").options == ("Toyota", "Honda")
        assert parsed.input_named("lang").kind == "hidden"
        assert parsed.input_named("lang").default == "en"

    def test_select_has_any_option(self):
        html = render_input(self._template().inputs[1])
        assert "-- any --" in html

    def test_labels_round_trip(self):
        parsed = extract_forms(render_form(self._template()))[0]
        assert "Keywords" in parsed.input_named("q").label
        assert "Make" in parsed.input_named("make").label

    def test_option_values_escaped(self):
        spec = FormInputSpec(
            name="category", kind="select", role="select", options=('a"b<c',), label="c"
        )
        parsed = extract_forms(f'<form action="/s" method="get">{render_input(spec)}</form>')[0]
        assert parsed.input_named("category").options == ('a"b<c',)
