"""Tests for web pages, error helpers and the load meter."""

from __future__ import annotations

from repro.webspace.loadmeter import (
    AGENT_CRAWLER,
    AGENT_SURFACER,
    AGENT_VIRTUAL,
    LoadMeter,
)
from repro.webspace.page import WebPage, method_not_allowed, not_found, server_error


class TestWebPage:
    def test_ok_flag(self):
        assert WebPage(url="http://a.com/", html="<html></html>").ok
        assert not WebPage(url="http://a.com/", html="x", status=404).ok

    def test_len_is_html_length(self):
        assert len(WebPage(url="u", html="abcd")) == 4

    def test_not_found_page(self):
        page = not_found("http://a.com/missing")
        assert page.status == 404
        assert "404" in page.html

    def test_method_not_allowed_page(self):
        page = method_not_allowed("http://a.com/post-form")
        assert page.status == 405
        assert "POST" in page.html

    def test_server_error_page(self):
        page = server_error("http://a.com/", "boom")
        assert page.status == 500
        assert "boom" in page.html


class TestLoadMeter:
    def test_records_and_totals(self):
        meter = LoadMeter()
        meter.record("a.com", AGENT_CRAWLER)
        meter.record("a.com", AGENT_CRAWLER)
        meter.record("a.com", AGENT_SURFACER)
        meter.record("b.com", AGENT_VIRTUAL)
        assert meter.total() == 4
        assert meter.total(host="a.com") == 3
        assert meter.total(host="a.com", agent=AGENT_CRAWLER) == 2
        assert meter.total(agent=AGENT_VIRTUAL) == 1

    def test_unknown_host_is_zero(self):
        assert LoadMeter().total(host="nowhere.com") == 0

    def test_snapshot(self):
        meter = LoadMeter()
        meter.record("a.com", AGENT_SURFACER)
        snapshot = meter.snapshot("a.com")
        assert snapshot.total == 1
        assert snapshot.by_agent == {AGENT_SURFACER: 1}

    def test_hosts_sorted(self):
        meter = LoadMeter()
        meter.record("b.com", AGENT_CRAWLER)
        meter.record("a.com", AGENT_CRAWLER)
        assert meter.hosts() == ["a.com", "b.com"]

    def test_per_host_and_max(self):
        meter = LoadMeter()
        for _ in range(3):
            meter.record("a.com", AGENT_CRAWLER)
        meter.record("b.com", AGENT_CRAWLER)
        assert meter.per_host() == {"a.com": 3, "b.com": 1}
        assert meter.max_per_host() == 3

    def test_reset(self):
        meter = LoadMeter()
        meter.record("a.com", AGENT_CRAWLER)
        meter.reset()
        assert meter.total() == 0
        assert meter.max_per_host() == 0
