"""Tests for deep-web sites: form rendering, submission handling, pagination."""

from __future__ import annotations

import pytest

from repro.datagen.domains import domain
from repro.htmlparse import extract_forms, extract_links, extract_text
from repro.relational.predicate import And, Contains, Eq, Range, TruePredicate
from repro.util.rng import SeededRng
from repro.webspace.sitegen import build_deep_site
from repro.webspace.url import Url


class TestHomepage:
    def test_homepage_contains_form(self, car_site):
        page = car_site.handle(car_site.homepage_url())
        assert page.ok
        forms = extract_forms(page.html)
        assert len(forms) == 1
        assert forms[0].method == "get"

    def test_homepage_without_browse_links_hides_content(self, car_site):
        page = car_site.handle(car_site.homepage_url())
        links = extract_links(page.html, car_site.homepage_url())
        assert all("/item" not in link for link in links)

    def test_browse_links_expose_some_records(self):
        site = build_deep_site(
            domain("books"), "books.test", 30, SeededRng(1), browse_link_count=3
        )
        page = site.handle(site.homepage_url())
        links = extract_links(page.html, site.homepage_url())
        assert sum("/item" in link for link in links) == 3

    def test_site_size_and_ground_truth(self, car_site):
        assert car_site.size() == 60
        assert len(car_site.ground_truth_ids()) == 60


class TestResultsPage:
    def _form(self, site):
        page = site.handle(site.homepage_url())
        return extract_forms(page.html)[0], site.forms[0]

    def test_select_submission_filters_results(self, car_site):
        parsed, template = self._form(car_site)
        make_input = next(spec for spec in template.inputs if spec.column == "make")
        value = make_input.options[0]
        url = Url.build(car_site.host, template.action_path, {make_input.name: value})
        page = car_site.handle(url)
        assert page.ok
        expected = car_site.database.table(template.table).count(Eq("make", value))
        assert f"{expected} result" in extract_text(page.html)

    def test_no_results_page(self, car_site):
        template = car_site.forms[0]
        search_input = next(spec for spec in template.inputs if spec.role == "search_box")
        url = Url.build(car_site.host, template.action_path, {search_input.name: "zzqx"})
        page = car_site.handle(url)
        assert page.ok
        assert "No results found" in page.html

    def test_empty_submission_returns_everything(self, car_site):
        template = car_site.forms[0]
        url = Url.build(car_site.host, template.action_path, {})
        page = car_site.handle(url)
        assert f"{car_site.size()} results found" in extract_text(page.html)

    def test_pagination_links_cover_all_records(self, car_site):
        template = car_site.forms[0]
        url = Url.build(car_site.host, template.action_path, {})
        seen: set[str] = set()
        for _ in range(20):
            page = car_site.handle(url)
            links = extract_links(page.html, url)
            seen.update(link for link in links if "/item" in link)
            next_links = [link for link in links if "page=" in link]
            if not next_links:
                break
            url = Url.parse(next_links[0])
        assert len(seen) == car_site.size()

    def test_invalid_page_number_defaults_to_first(self, car_site):
        template = car_site.forms[0]
        url = Url.build(car_site.host, template.action_path, {"page": "abc"})
        assert car_site.handle(url).ok

    def test_unknown_params_are_ignored(self, car_site):
        template = car_site.forms[0]
        url = Url.build(car_site.host, template.action_path, {"bogus_param": "1"})
        page = car_site.handle(url)
        assert f"{car_site.size()} results found" in extract_text(page.html)


class TestDetailPage:
    def test_detail_page_renders_record(self, car_site):
        page = car_site.handle(car_site.detail_url(1))
        assert page.ok
        record = car_site.database.table("listings").get(1)
        assert record["make"] in page.html

    def test_missing_record_is_404(self, car_site):
        assert car_site.handle(car_site.detail_url(99999)).status == 404

    def test_missing_id_is_404(self, car_site):
        assert car_site.handle(Url.build(car_site.host, "/item", {})).status == 404


class TestRequestRouting:
    def test_unknown_path_is_404(self, car_site):
        assert car_site.handle(Url.build(car_site.host, "/nowhere", {})).status == 404

    def test_wrong_host_is_404(self, car_site):
        assert car_site.handle(Url.build("other.example.com", "/", {})).status == 404

    def test_post_form_rejects_get(self):
        site = build_deep_site(domain("jobs"), "jobs.test", 20, SeededRng(2), method="post")
        template = site.forms[0]
        url = Url.build(site.host, template.action_path, {})
        assert site.handle(url).status == 405


class TestPredicateCompilation:
    def test_empty_params_give_true_predicate(self, car_site):
        template = car_site.forms[0]
        predicate = car_site.compile_predicate(template, {})
        assert isinstance(predicate, TruePredicate)

    def test_search_box_becomes_contains(self, car_site):
        template = car_site.forms[0]
        search_input = next(spec for spec in template.inputs if spec.role == "search_box")
        predicate = car_site.compile_predicate(template, {search_input.name: "toyota"})
        assert isinstance(predicate, And) or isinstance(predicate, Contains)

    def test_range_pair_becomes_single_range(self, car_site):
        template = car_site.forms[0]
        min_input = next(spec for spec in template.inputs if spec.role == "range_min" and spec.column == "price")
        max_input = next(spec for spec in template.inputs if spec.role == "range_max" and spec.column == "price")
        predicate = car_site.compile_predicate(
            template, {min_input.name: "1000", max_input.name: "30000"}
        )
        # A lone min/max pair compiles to the Range itself (single-part
        # conjunctions are unwrapped); with other inputs it nests in an And.
        parts = predicate.parts if isinstance(predicate, And) else (predicate,)
        ranges = [part for part in parts if isinstance(part, Range)]
        assert len(ranges) == 1
        assert ranges[0].low == 1000 and ranges[0].high == 30000

    def test_numeric_select_values_are_coerced(self):
        site = build_deep_site(domain("real_estate"), "re.test", 30, SeededRng(3))
        template = site.forms[0]
        bedrooms = next(spec for spec in template.inputs if spec.column == "bedrooms")
        predicate = site.compile_predicate(template, {bedrooms.name: bedrooms.options[0]})
        matched = site.database.table(template.table).scan(predicate)
        assert all(row["bedrooms"] == int(bedrooms.options[0]) for row in matched)

    def test_non_numeric_value_on_numeric_column_matches_nothing(self, car_site):
        template = car_site.forms[0]
        min_input = next(spec for spec in template.inputs if spec.role == "range_min")
        predicate = car_site.compile_predicate(template, {min_input.name: "cheap"})
        assert isinstance(predicate, TruePredicate), "unparseable range value is dropped"

    def test_blank_values_ignored(self, car_site):
        template = car_site.forms[0]
        predicate = car_site.compile_predicate(template, {"make": "   "})
        assert isinstance(predicate, TruePredicate)
