"""Tests for whole-web generation."""

from __future__ import annotations

import pytest

from repro.datagen.domains import domain, domain_names
from repro.htmlparse import extract_forms
from repro.util.rng import SeededRng
from repro.webspace.sitegen import (
    WebConfig,
    build_deep_site,
    build_form,
    build_database,
    generate_deep_sites,
    generate_web,
)


class TestBuildDatabase:
    def test_database_has_requested_rows(self):
        database = build_database(domain("books"), 35, SeededRng(1))
        assert database.total_rows() == 35

    def test_select_columns_are_indexed(self):
        database = build_database(domain("used_cars"), 20, SeededRng(1))
        # Index presence is observable through correct equality answers.
        table = database.table("listings")
        make = table.distinct_values("make")[0]
        from repro.relational.predicate import Eq

        assert all(row["make"] == make for row in table.scan(Eq("make", make)))


class TestBuildForm:
    def test_form_covers_domain_inputs(self):
        spec = domain("used_cars")
        database = build_database(spec, 40, SeededRng(2))
        form = build_form(spec, database, SeededRng(3))
        roles = {input_spec.role for input_spec in form.inputs}
        assert {"search_box", "select", "typed_text", "range_min", "range_max"} <= roles

    def test_range_inputs_share_options(self):
        spec = domain("used_cars")
        database = build_database(spec, 40, SeededRng(2))
        form = build_form(spec, database, SeededRng(3), range_value_count=10)
        price_inputs = [spec_ for spec_ in form.inputs if spec_.column == "price"]
        assert len(price_inputs) == 2
        assert price_inputs[0].options == price_inputs[1].options
        assert 2 <= len(price_inputs[0].options) <= 10

    def test_select_options_come_from_data(self):
        spec = domain("books")
        database = build_database(spec, 40, SeededRng(4))
        form = build_form(spec, database, SeededRng(5))
        genre_input = next(spec_ for spec_ in form.inputs if spec_.column == "genre")
        table_values = {str(value) for value in database.table("books").distinct_values("genre")}
        assert set(genre_input.options) == table_values

    def test_form_renders_and_parses_back(self):
        site = build_deep_site(domain("jobs"), "jobs.gen.test", 25, SeededRng(6))
        page = site.handle(site.homepage_url())
        parsed = extract_forms(page.html)[0]
        rendered_names = {spec.name for spec in parsed.inputs if spec.is_bindable}
        template_names = {spec.name for spec in site.forms[0].inputs}
        assert rendered_names == template_names


class TestGenerateWeb:
    def test_site_count_matches_config(self):
        config = WebConfig(total_deep_sites=9, surface_site_count=2, seed=1)
        web = generate_web(config)
        assert len(web.deep_sites()) == 9
        assert len(web.surface_sites()) == 2

    def test_generation_is_deterministic(self):
        config = WebConfig(total_deep_sites=6, surface_site_count=1, seed=12)
        first = generate_web(config)
        second = generate_web(config)
        assert [site.host for site in first.sites()] == [site.host for site in second.sites()]
        assert first.total_deep_records() == second.total_deep_records()

    def test_sizes_respect_bounds(self):
        config = WebConfig(total_deep_sites=15, min_records=30, max_records=100, seed=3)
        sites = generate_deep_sites(config, SeededRng(3))
        assert all(30 <= site.size() <= 100 for site in sites)

    def test_post_form_fraction_zero_and_one(self):
        none_post = generate_deep_sites(
            WebConfig(total_deep_sites=8, post_form_fraction=0.0, seed=4), SeededRng(4)
        )
        assert all(site.forms[0].method == "get" for site in none_post)
        all_post = generate_deep_sites(
            WebConfig(total_deep_sites=8, post_form_fraction=1.0, seed=4), SeededRng(4)
        )
        assert all(site.forms[0].method == "post" for site in all_post)

    def test_domain_restriction(self):
        config = WebConfig(total_deep_sites=6, domains=("government",), seed=5)
        sites = generate_deep_sites(config, SeededRng(5))
        assert {site.domain_name for site in sites} == {"government"}

    def test_unique_hosts(self):
        web = generate_web(WebConfig(total_deep_sites=20, seed=6))
        hosts = [site.host for site in web.sites()]
        assert len(hosts) == len(set(hosts))

    def test_effective_weights_cover_all_domains(self):
        config = WebConfig()
        assert len(config.effective_weights()) == len(domain_names())

    def test_unknown_scale_domains_still_build(self):
        # A config listing a subset of domains with explicit weights.
        config = WebConfig(
            total_deep_sites=4, domains=("books", "jobs"), domain_weights=(1.0, 3.0), seed=8
        )
        sites = generate_deep_sites(config, SeededRng(8))
        assert {site.domain_name for site in sites} <= {"books", "jobs"}
