"""Tests for surface sites, the Web registry and fetch metering."""

from __future__ import annotations

import pytest

from repro.htmlparse import extract_links, extract_text
from repro.util.rng import SeededRng
from repro.webspace.loadmeter import AGENT_SURFACER, AGENT_USER
from repro.webspace.surface_site import SurfaceSite, SurfaceTopic
from repro.webspace.url import Url
from repro.webspace.web import Web


@pytest.fixture
def portal() -> SurfaceSite:
    topics = [
        SurfaceTopic(slug="ava-sterling", name="Ava Sterling", page_count=4),
        SurfaceTopic(slug="gaming-console-x", name="gaming console x", page_count=3),
    ]
    return SurfaceSite(host="portal.test", title="Test Portal", topics=topics, rng=SeededRng(1))


class TestSurfaceSite:
    def test_homepage_links_to_topics(self, portal):
        page = portal.handle(portal.homepage_url())
        links = extract_links(page.html, portal.homepage_url())
        assert any("ava-sterling" in link for link in links)

    def test_topic_index_links_to_all_pages(self, portal):
        topic = portal.topics[0]
        page = portal.handle(portal.topic_url(topic))
        links = extract_links(page.html, portal.topic_url(topic))
        assert sum("/ava-sterling/" in link for link in links) == topic.page_count

    def test_topic_page_mentions_topic(self, portal):
        page = portal.handle(portal.topic_url(portal.topics[0], 2))
        assert "Ava Sterling" in extract_text(page.html)

    def test_unknown_topic_is_404(self, portal):
        assert portal.handle(Url.build("portal.test", "/nobody", {})).status == 404

    def test_out_of_range_page_is_404(self, portal):
        assert portal.handle(portal.topic_url(portal.topics[0], 99)).status == 404

    def test_non_numeric_page_is_404(self, portal):
        assert portal.handle(Url.build("portal.test", "/ava-sterling/abc", {})).status == 404

    def test_size_counts_pages(self, portal):
        assert portal.size() == (4 + 1) + (3 + 1)

    def test_pages_are_deterministic(self, portal):
        first = portal.handle(portal.topic_url(portal.topics[0], 1)).html
        second = portal.handle(portal.topic_url(portal.topics[0], 1)).html
        assert first == second


class TestWeb:
    def test_register_and_fetch(self, car_site, portal):
        web = Web()
        web.register_all([car_site, portal])
        assert len(web) == 2
        assert car_site.host in web
        page = web.fetch(car_site.homepage_url())
        assert page.ok

    def test_duplicate_host_rejected(self, car_site):
        web = Web()
        web.register(car_site)
        with pytest.raises(ValueError):
            web.register(car_site)

    def test_fetch_unknown_host_is_404(self):
        web = Web()
        assert web.fetch("http://ghost.example.com/").status == 404

    def test_fetch_accepts_strings(self, car_site):
        web = Web()
        web.register(car_site)
        assert web.fetch(f"http://{car_site.host}/").ok

    def test_fetch_meters_load_by_agent(self, car_site):
        web = Web()
        web.register(car_site)
        web.fetch(car_site.homepage_url(), agent=AGENT_SURFACER)
        web.fetch(car_site.homepage_url(), agent=AGENT_SURFACER)
        web.fetch(car_site.homepage_url(), agent=AGENT_USER)
        assert web.load_meter.total(host=car_site.host, agent=AGENT_SURFACER) == 2
        assert web.load_meter.total(host=car_site.host) == 3

    def test_site_partitioning(self, car_site, portal):
        web = Web()
        web.register_all([car_site, portal])
        assert [site.host for site in web.deep_sites()] == [car_site.host]
        assert [site.host for site in web.surface_sites()] == [portal.host]

    def test_homepage_urls_and_total_records(self, car_site, portal):
        web = Web()
        web.register_all([car_site, portal])
        assert len(web.homepage_urls()) == 2
        assert web.total_deep_records() == car_site.size()

    def test_unknown_site_lookup(self):
        with pytest.raises(KeyError):
            Web().site("missing.host")
