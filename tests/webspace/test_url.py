"""Tests for the URL model."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.webspace.url import Url


class TestConstruction:
    def test_build_with_params(self):
        url = Url.build("example.com", "/search", {"make": "Toyota", "price": 5000})
        assert url.host == "example.com"
        assert url.param("make") == "Toyota"
        assert url.param("price") == "5000"

    def test_path_gets_leading_slash(self):
        assert Url(host="a.com", path="search").path == "/search"

    def test_params_are_sorted(self):
        url = Url.build("a.com", "/s", {"b": 1, "a": 2})
        assert [key for key, _ in url.params] == ["a", "b"]

    def test_identical_bindings_render_identically(self):
        first = Url.build("a.com", "/s", {"x": "1", "y": "2"})
        second = Url.build("a.com", "/s", {"y": "2", "x": "1"})
        assert str(first) == str(second)
        assert first == second


class TestParsing:
    def test_round_trip(self):
        original = Url.build("cars.example.com", "/find", {"q": "red car", "zip": "02139"})
        parsed = Url.parse(str(original))
        assert parsed == original

    def test_parse_without_scheme(self):
        url = Url.parse("example.com/path?x=1")
        assert url.host == "example.com"
        assert url.path == "/path"
        assert url.param("x") == "1"

    def test_parse_no_path(self):
        assert Url.parse("http://example.com").path == "/"

    def test_parse_keeps_blank_values(self):
        assert Url.parse("http://a.com/s?q=").param("q") == ""

    def test_special_characters_round_trip(self):
        url = Url.build("a.com", "/s", {"q": "new york & co"})
        assert Url.parse(str(url)).param("q") == "new york & co"


class TestManipulation:
    def test_with_params_adds_and_overrides(self):
        url = Url.build("a.com", "/s", {"page": 1, "q": "x"})
        updated = url.with_params(page=2, sort="price")
        assert updated.param("page") == "2"
        assert updated.param("sort") == "price"
        assert updated.param("q") == "x"
        assert url.param("page") == "1", "original is immutable"

    def test_without_params(self):
        url = Url.build("a.com", "/s", {"page": 1, "q": "x"})
        stripped = url.without_params("page")
        assert stripped.param("page") is None
        assert stripped.param("q") == "x"

    def test_param_default(self):
        assert Url.build("a.com", "/").param("missing", "fallback") == "fallback"

    def test_query_string_empty(self):
        assert Url.build("a.com", "/").query_string() == ""
        assert str(Url.build("a.com", "/")) == "http://a.com/"


class TestProperties:
    @given(
        st.dictionaries(
            keys=st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
            values=st.text(alphabet="abc 0123&=+", min_size=0, max_size=10),
            max_size=5,
        )
    )
    def test_round_trip_arbitrary_params(self, params):
        url = Url.build("host.example.com", "/path", params)
        assert Url.parse(str(url)).param_dict == {key: str(value) for key, value in params.items()}
