"""Tests for the table corpus and the ACSDb statistics."""

from __future__ import annotations

import pytest

from repro.htmlparse.forms import ParsedForm, ParsedInput
from repro.webspace.page import WebPage
from repro.webtables.acsdb import AcsDb
from repro.webtables.corpus import TableCorpus, normalize_attribute


HEADER_TABLE_PAGE = WebPage(
    url="http://data.test/t1",
    html=(
        "<html><body><table>"
        "<tr><th>Make</th><th>Model</th><th>Price</th></tr>"
        "<tr><td>Toyota</td><td>Camry</td><td>5000</td></tr>"
        "<tr><td>Honda</td><td>Civic</td><td>6000</td></tr>"
        "</table></body></html>"
    ),
)

DETAIL_PAGE = WebPage(
    url="http://cars.test/item?id=1",
    html=(
        "<html><body><table class='record'>"
        "<tr><th>make</th><td>Ford</td></tr>"
        "<tr><th>model</th><td>Focus</td></tr>"
        "<tr><th>price</th><td>3000</td></tr>"
        "<tr><th>zipcode</th><td>78701</td></tr>"
        "</table></body></html>"
    ),
)

LOW_QUALITY_PAGE = WebPage(
    url="http://junk.test/",
    html="<html><body><table><tr><td>just</td><td>layout</td></tr></table></body></html>",
)


def sample_form() -> ParsedForm:
    return ParsedForm(
        action="/s",
        method="get",
        inputs=(
            ParsedInput(name="make", kind="select", options=("Toyota", "Honda")),
            ParsedInput(name="zip_code", kind="text"),
            ParsedInput(name="maxPrice", kind="select", options=("1000", "2000")),
        ),
    )


class TestNormalizeAttribute:
    @pytest.mark.parametrize(
        "raw,expected",
        [("Make", "make"), ("zip_code", "zip_code"), ("maxPrice", "max_price"), ("Body Style", "body_style")],
    )
    def test_normalization(self, raw, expected):
        assert normalize_attribute(raw) == expected


class TestCorpusIngestion:
    def test_header_table_admitted(self):
        corpus = TableCorpus()
        assert corpus.add_page(HEADER_TABLE_PAGE) == 1
        table = corpus.tables[0]
        assert table.attributes == ("make", "model", "price")
        assert table.row_count == 2
        assert table.column_values("price") == ["5000", "6000"]

    def test_detail_page_becomes_schema_instance(self):
        corpus = TableCorpus()
        assert corpus.add_page(DETAIL_PAGE) == 1
        table = corpus.tables[0]
        assert table.source_kind == "detail_page"
        assert set(table.attributes) == {"make", "model", "price", "zipcode"}
        assert table.row_count == 1

    def test_low_quality_table_rejected(self):
        corpus = TableCorpus()
        assert corpus.add_page(LOW_QUALITY_PAGE) == 0

    def test_error_page_ignored(self):
        corpus = TableCorpus()
        assert corpus.add_page(WebPage(url="u", html="x", status=404)) == 0

    def test_form_ingestion(self):
        corpus = TableCorpus()
        corpus.add_form(sample_form())
        assert corpus.form_schemas == [("make", "max_price", "zip_code")]
        assert corpus.form_values["make"] == ["Toyota", "Honda"]

    def test_attribute_values_merge_tables_and_forms(self):
        corpus = TableCorpus()
        corpus.add_page(HEADER_TABLE_PAGE)
        corpus.add_form(sample_form())
        values = {value.lower() for value in corpus.attribute_values("make")}
        assert {"toyota", "honda"} <= values

    def test_schemata_and_attributes(self):
        corpus = TableCorpus()
        corpus.add_pages([HEADER_TABLE_PAGE, DETAIL_PAGE])
        corpus.add_form(sample_form())
        assert len(corpus.schemata()) == 3
        assert "zipcode" in corpus.attributes()
        assert corpus.stats.tables_admitted == 2
        assert corpus.stats.forms_seen == 1


class TestAcsDb:
    def _acsdb(self) -> AcsDb:
        schemata = [
            ("make", "model", "price", "zipcode"),
            ("make", "model", "price", "color"),
            ("make", "model", "mileage"),
            ("zip", "price", "bedrooms"),
            ("zip", "bedrooms", "sqft"),
        ]
        return AcsDb(schemata)

    def test_frequencies(self):
        acsdb = self._acsdb()
        assert acsdb.schema_count == 5
        assert acsdb.frequency("make") == 3
        assert acsdb.probability("make") == pytest.approx(0.6)
        assert acsdb.frequency("unknown") == 0

    def test_cooccurrence_and_conditional(self):
        acsdb = self._acsdb()
        assert acsdb.cooccurrence("make", "model") == 3
        assert acsdb.conditional_probability("model", given="make") == pytest.approx(1.0)
        assert acsdb.conditional_probability("color", given="make") == pytest.approx(1 / 3)
        assert acsdb.conditional_probability("anything", given="unknown") == 0.0

    def test_context_similarity_finds_synonym_shape(self):
        acsdb = self._acsdb()
        # "zip" and "zipcode" never co-occur but share neighbours (price).
        assert acsdb.cooccurrence("zip", "zipcode") == 0
        assert acsdb.context_similarity("zip", "zipcode") > 0.0
        assert acsdb.context_similarity("make", "make") >= 0.0

    def test_from_corpus(self):
        corpus = TableCorpus()
        corpus.add_pages([HEADER_TABLE_PAGE, DETAIL_PAGE])
        acsdb = AcsDb.from_corpus(corpus)
        assert acsdb.schema_count == 2
        assert acsdb.frequency("make") == 2

    def test_empty_and_degenerate_schemata(self):
        acsdb = AcsDb([(), ("only",)])
        assert acsdb.schema_count == 1
        assert acsdb.frequency("only") == 1
        assert acsdb.context_vector("only") == {}


class TestBatchHardening:
    """One malformed page or table must not abort a whole batch."""

    def test_add_pages_returns_per_page_admit_counts(self):
        corpus = TableCorpus()
        counts = corpus.add_pages([HEADER_TABLE_PAGE, LOW_QUALITY_PAGE, DETAIL_PAGE])
        assert counts == [1, 0, 1]
        assert len(corpus) == 2

    def test_add_pages_survives_a_page_that_raises(self, monkeypatch):
        corpus = TableCorpus()
        original = corpus.add_page

        def exploding_add_page(page):
            if page.url == "http://junk.test/":
                raise RuntimeError("malformed page")
            return original(page)

        monkeypatch.setattr(corpus, "add_page", exploding_add_page)
        counts = corpus.add_pages([HEADER_TABLE_PAGE, LOW_QUALITY_PAGE, DETAIL_PAGE])
        assert counts == [1, 0, 1]
        assert corpus.stats.page_errors == 1
        assert len(corpus) == 2

    def test_add_page_survives_a_table_that_raises(self, monkeypatch):
        import repro.webtables.corpus as corpus_module

        corpus = TableCorpus()
        original_admit = TableCorpus._admit
        calls = {"n": 0}

        def exploding_admit(self, table, source_url):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("unadmittable table")
            return original_admit(self, table, source_url)

        monkeypatch.setattr(corpus_module.TableCorpus, "_admit", exploding_admit)
        counts = corpus.add_pages([HEADER_TABLE_PAGE, DETAIL_PAGE])
        # First table blew up but the batch kept going.
        assert counts == [0, 1]
        assert corpus.stats.table_errors == 1
        assert len(corpus) == 1

    def test_error_page_counts_as_zero(self):
        corpus = TableCorpus()
        counts = corpus.add_pages([WebPage(url="u", html="x", status=500), DETAIL_PAGE])
        assert counts == [0, 1]


class TestCorpusStoreEmission:
    """Admitted tables and form schemata land in the shared content store."""

    def _store(self):
        from repro.store import InMemoryBackend, Ingestor

        backend = InMemoryBackend()
        return backend, Ingestor(backend)

    def test_admitted_tables_become_webtable_documents(self):
        from repro.store.records import SOURCE_WEBTABLE

        backend, ingestor = self._store()
        corpus = TableCorpus(ingestor=ingestor)
        corpus.add_pages([HEADER_TABLE_PAGE, LOW_QUALITY_PAGE, DETAIL_PAGE])
        docs = backend.documents(source=SOURCE_WEBTABLE)
        assert len(docs) == 2  # the low-quality table is not admitted
        assert docs[0].url == "http://data.test/t1#table-1"
        assert docs[0].host == "data.test"
        assert docs[0].annotations["kind"] == "html_table"
        assert "toyota" in docs[0].text.lower()

    def test_form_schema_becomes_webtable_document(self):
        from repro.store.records import SOURCE_WEBTABLE

        backend, ingestor = self._store()
        corpus = TableCorpus(ingestor=ingestor)
        corpus.add_form(sample_form())
        docs = backend.documents(source=SOURCE_WEBTABLE)
        assert len(docs) == 1
        assert docs[0].annotations["kind"] == "form"
        assert "make" in docs[0].text

    def test_webtable_documents_are_searchable(self):
        from repro.search.engine import SearchEngine
        from repro.store.records import SOURCE_WEBTABLE

        engine = SearchEngine()
        corpus = TableCorpus(ingestor=engine.ingestor)
        corpus.add_page(HEADER_TABLE_PAGE)
        results = engine.search("toyota camry")
        assert results and results[0].source == SOURCE_WEBTABLE

    def test_reingesting_a_page_does_not_duplicate_store_documents(self):
        from repro.store.records import SOURCE_WEBTABLE

        backend, ingestor = self._store()
        corpus = TableCorpus(ingestor=ingestor)
        corpus.add_page(HEADER_TABLE_PAGE)
        corpus.add_page(HEADER_TABLE_PAGE)  # same page again
        corpus.add_form(sample_form())
        corpus.add_form(sample_form())  # same form again
        docs = backend.documents(source=SOURCE_WEBTABLE)
        # Stable record URLs dedup in the store (1 table + 1 form schema).
        assert len(docs) == 2
