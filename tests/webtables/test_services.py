"""Tests for the semantic services and the semantic server facade."""

from __future__ import annotations

import pytest

from repro.webtables.acsdb import AcsDb
from repro.webtables.corpus import CorpusTable, TableCorpus
from repro.webtables.semantic_server import SemanticServer
from repro.webtables.services import (
    AutocompleteService,
    PropertyService,
    SynonymService,
    ValuesService,
    precision_at_k,
)


def build_corpus() -> TableCorpus:
    """A hand-built corpus with a known synonym structure.

    ``zip`` and ``zipcode`` are used by different designers for the same
    concept: they never co-occur but share neighbours.
    """
    corpus = TableCorpus()
    schemas = [
        # Real-estate-style designers who spell the attribute "zipcode" ...
        ("price", "bedrooms", "city", "zipcode"),
        ("bedrooms", "sqft", "city", "zipcode"),
        ("price", "sqft", "zipcode"),
        # ... and others who spell it "zip", with the same neighbours.
        ("price", "bedrooms", "city", "zip"),
        ("bedrooms", "sqft", "zip", "city"),
        ("price", "sqft", "zip", "garage"),
        # Car schemas give "make"/"model" their own distinct context.
        ("make", "model", "price", "color"),
        ("make", "model", "mileage", "year"),
        ("make", "model", "price", "year"),
        # Book schemas: unrelated context.
        ("title", "author", "genre", "price"),
        ("title", "author", "year"),
    ]
    for index, attributes in enumerate(schemas):
        corpus.tables.append(
            CorpusTable(attributes=attributes, values=(tuple("x" for _ in attributes),), source_url=f"s{index}")
        )
    # Values for the property/values services.
    corpus.tables.append(
        CorpusTable(
            attributes=("make", "model", "price"),
            values=(("Toyota", "Camry", "5000"), ("Honda", "Civic", "6000")),
            source_url="values",
        )
    )
    return corpus


@pytest.fixture
def corpus() -> TableCorpus:
    return build_corpus()


@pytest.fixture
def acsdb(corpus) -> AcsDb:
    return AcsDb.from_corpus(corpus)


class TestSynonymService:
    def test_zip_and_zipcode_are_mutual_synonyms(self, acsdb):
        service = SynonymService(acsdb)
        zip_synonyms = [scored.name for scored in service.synonyms("zip", limit=3)]
        zipcode_synonyms = [scored.name for scored in service.synonyms("zipcode", limit=3)]
        assert "zipcode" in zip_synonyms
        assert "zip" in zipcode_synonyms

    def test_frequent_coattributes_are_not_synonyms(self, acsdb):
        service = SynonymService(acsdb)
        make_synonyms = [scored.name for scored in service.synonyms("make", limit=3)]
        assert "model" not in make_synonyms, "make and model co-occur constantly"

    def test_unknown_attribute(self, acsdb):
        assert SynonymService(acsdb).synonyms("nonexistent") == []

    def test_scores_sorted_descending(self, acsdb):
        suggestions = SynonymService(acsdb).synonyms("zip", limit=10)
        scores = [scored.score for scored in suggestions]
        assert scores == sorted(scores, reverse=True)


class TestValuesService:
    def test_values_from_table_columns(self, corpus):
        service = ValuesService(corpus)
        assert {"Toyota", "Honda"} <= set(service.values("make"))

    def test_limit(self, corpus):
        assert len(ValuesService(corpus).values("make", limit=1)) == 1

    def test_value_set_lowercases(self, corpus):
        assert "toyota" in ValuesService(corpus).value_set("make")


class TestPropertyService:
    def test_entity_resolves_to_properties(self, corpus, acsdb):
        service = PropertyService(corpus, acsdb)
        anchors = service.attributes_containing("Toyota")
        assert anchors == ["make"]
        properties = [scored.name for scored in service.properties("Toyota", limit=5)]
        assert "model" in properties
        assert "price" in properties

    def test_unknown_entity(self, corpus, acsdb):
        assert PropertyService(corpus, acsdb).properties("Atlantis") == []


class TestAutocompleteService:
    def test_suggests_common_coattributes(self, acsdb):
        service = AutocompleteService(acsdb)
        suggestions = [scored.name for scored in service.suggest(["make", "model"], limit=5)]
        assert "price" in suggestions
        assert "zipcode" in suggestions or "mileage" in suggestions

    def test_given_attributes_never_suggested(self, acsdb):
        suggestions = [scored.name for scored in AutocompleteService(acsdb).suggest(["make"])]
        assert "make" not in suggestions

    def test_real_estate_partial_schema(self, acsdb):
        suggestions = [scored.name for scored in AutocompleteService(acsdb).suggest(["bedrooms"])]
        assert "sqft" in suggestions or "city" in suggestions

    def test_empty_input(self, acsdb):
        assert AutocompleteService(acsdb).suggest([]) == []


class TestPrecisionAtK:
    def test_precision(self, acsdb):
        suggestions = AutocompleteService(acsdb).suggest(["make", "model"], limit=5)
        assert 0.0 <= precision_at_k(suggestions, ["price", "mileage", "color", "zipcode", "city"], 3) <= 1.0
        assert precision_at_k([], ["price"], 3) == 0.0
        assert precision_at_k(suggestions, [], 0) == 0.0


class TestSemanticServer:
    def test_facade_wires_all_services(self, corpus):
        server = SemanticServer(corpus)
        assert server.values("make")
        assert server.autocomplete(["make", "model"])
        assert server.properties("Toyota")
        assert isinstance(server.synonyms("zip"), list)

    def test_from_web_builds_corpus(self, small_web):
        server = SemanticServer.from_web(small_web, detail_pages_per_site=5)
        assert len(server.corpus) > 0
        assert server.acsdb.schema_count > 0
        # Attributes from the generated domains must be present.
        assert "price" in server.acsdb.attributes() or "year" in server.acsdb.attributes()
